package sim

import (
	"context"
	"fmt"

	"mnpusim/internal/clock"
	"mnpusim/internal/dram"
	"mnpusim/internal/invariant"
	"mnpusim/internal/mem"
	"mnpusim/internal/mmu"
	"mnpusim/internal/npu"
	"mnpusim/internal/obs"
	"mnpusim/internal/obs/hostprof"
	"mnpusim/internal/tile"
)

// CoreResult summarizes one core's measured inference.
type CoreResult struct {
	Net string
	// Cycles is the first-iteration latency in the core's local clock:
	// the avg_cycle output of the original simulator.
	Cycles int64
	// Utilization is PE utilization over the first iteration.
	Utilization float64
	// Iterations counts completed inferences including co-runner loops.
	Iterations int
	// TrafficBytes is the schedule's off-chip traffic per inference.
	TrafficBytes int64
	// FootprintBytes is the virtual-address footprint (the
	// memory_footprint output).
	FootprintBytes int64
	// LayerEndCycles maps layer index to first-iteration completion
	// cycle (the execution_cycle output).
	LayerEndCycles map[int]int64

	NPU npu.Stats
	MMU mmu.CoreStats
	// TLBHitRate is the hit rate of the TLB serving this core (shared
	// TLBs report the merged rate).
	TLBHitRate float64
	// DataBytes and PTBytes split completed DRAM traffic by class.
	DataBytes int64
	PTBytes   int64
}

// Result is the outcome of one simulation.
type Result struct {
	Cores        []CoreResult
	GlobalCycles int64
	DRAM         dram.Stats
	Sharing      Sharing
}

// DRAMEnergy returns the off-chip energy breakdown of the run under the
// given energy parameters.
func (r Result) DRAMEnergy(p dram.EnergyParams) dram.EnergyBreakdown {
	return r.DRAM.Energy(p, r.GlobalCycles)
}

// farFuture is the "no pending event" horizon on the global clock.
const farFuture clock.Global = clock.FarFuture

// cancelCheckMask throttles how often both kernels poll the context's
// done channel: every 64 processed cycles (tick-kernel iterations or
// event-kernel drained cycles), plus — in the tick kernel —
// unconditionally at every fast-forward boundary. A processed cycle is
// the unit of real work in both kernels, so the poll interval bounds
// cancellation latency the same way in each.
const cancelCheckMask = 63

// Run executes the configured system until every core completes its
// first inference (co-runners loop to keep generating contention, per
// the mix methodology of §4.1.1), and returns the per-core results.
//
// Run is RunContext with a background (never-cancelled) context.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// system is one fully built simulation: the hardware, the probe sink,
// and the main-loop bookkeeping shared by both kernels.
type system struct {
	cfg    Config
	memory *dram.Memory
	unit   *mmu.MMU
	cores  []*npu.Core
	starts []clock.Global
	sink   obs.Sink

	// finished tracks which cores already emitted their first-inference
	// phase event; nil when no sink is attached.
	finished []bool

	// Loop bookkeeping, identical across kernels by construction: the
	// event kernel processes exactly the cycles the tick kernel's
	// fast-forward would tick, so loopIters/loopSkips/loopSkipped (and
	// the probe events derived from them) match byte-for-byte.
	loopIters, loopSkips, loopSkipped int64

	// compTicks counts per-component Tick invocations (one per channel,
	// MMU, or core per ticked cycle); the headline metric the event
	// kernel reduces.
	compTicks int64
}

func (s *system) allDone() bool {
	for _, c := range s.cores {
		if !c.FinishedFirstIteration() {
			return false
		}
	}
	return true
}

// phaseScan emits a first-inference phase event for every core that
// newly finished during cycle now; both kernels call it after every
// processed cycle so the phase stream is identical.
func (s *system) phaseScan(now clock.Global) {
	if s.sink == nil {
		return
	}
	for i, c := range s.cores {
		if !s.finished[i] && c.FinishedFirstIteration() {
			s.finished[i] = true
			s.sink.Emit(obs.Event{Cycle: now, Kind: obs.KindPhase, Core: int32(i), Str: obs.PhaseFirstInference})
		}
	}
}

func (s *system) cancelled(ctx context.Context, at clock.Global) error {
	return fmt.Errorf("sim: run cancelled at cycle %d: %w", at, ctx.Err())
}

// RunContext is Run with cancellation: if ctx is cancelled or its
// deadline passes mid-run, the simulation stops within a bounded number
// of loop iterations (tick kernel) or heap pops (event kernel) and
// returns an error wrapping ctx.Err(). A cancelled run returns a zero
// Result; partial simulation state is discarded. The simulation itself
// is single-goroutine, so cancellation leaks nothing.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("sim: run not started: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	n := cfg.Cores()
	kern := cfg.effectiveKernel()

	// Build the hardware.
	memory, err := dram.New(cfg.DRAM)
	if err != nil {
		return Result{}, err
	}
	for i, set := range cfg.channelSets() {
		if err := memory.SetCoreChannels(i, set); err != nil {
			return Result{}, err
		}
	}

	ids := &mem.IDAllocator{}
	tables := make([]*mmu.PageTable, n)
	for i := 0; i < n; i++ {
		alloc := mmu.NewPhysAllocator(uint64(i)*cfg.PhysBytesPerCore, cfg.PhysBytesPerCore, cfg.PageSize)
		tables[i] = mmu.NewPageTable(cfg.PageSize, cfg.WalkLevels, alloc)
	}
	unit, err := mmu.New(cfg.mmuConfig(), memory, tables, ids)
	if err != nil {
		return Result{}, err
	}

	// One probe stream, fanned out to the caller's sink and the metrics
	// registry. The deprecated OnLoopStats shim needs a registry even
	// when the caller provided none.
	reg := cfg.Metrics
	if reg == nil && cfg.OnLoopStats != nil {
		reg = obs.NewRegistry()
	}
	sink := cfg.Obs
	if reg != nil {
		sink = obs.Tee(sink, obs.NewRegistrySink(reg))
	}
	// The profiler times the whole sink chain (caller's sink + registry
	// fold) at the emission boundary; with no profiler the sink passes
	// through unwrapped, preserving the nil fast path.
	sink = cfg.HostProf.WrapSink(sink)
	memory.SetObs(sink)
	unit.SetObs(sink)

	starts := cfg.StartCycles
	if starts == nil {
		starts = make([]clock.Global, n)
	}

	// The event kernel is created before the cores so its wake function
	// can be wired into the stimulus seams: DRAM enqueues and burst
	// completions (memory hooks) and DMA submissions (the per-core
	// Submitter wrapper). Component ids are heap tie-break priorities
	// and mirror the tick loop's within-cycle order: channels, MMU,
	// cores.
	var ek *eventKernel
	if kern == KernelEvent {
		chs := memory.Channels()
		ek = newEventKernel(chs + 1 + n)
		// An enqueue re-arms the landing channel at the channel's own
		// recomputed horizon, not blindly now+1: the fresh request's
		// earliest command may sit behind bank or bus timers, and the
		// tick kernel's fast-forward (which recomputes the device
		// horizon after every cycle) would skip straight to it. More
		// work can only move the horizon earlier, so wake()'s
		// earlier-only rule applies cleanly.
		memory.OnEnqueue = func(now clock.Global, ch int) { ek.wake(ch, memory.ChannelNextEventAfter(ch, now)) }
		memory.OnComplete = func(done clock.Global, r *mem.Request) {
			if r.Class == mem.PageTable {
				ek.wake(chs, done)
			} else if r.Core >= 0 && r.Core < n {
				ek.wake(chs+1+r.Core, done)
			}
		}
	}

	// Compile the software and build the cores.
	cores := make([]*npu.Core, n)
	scheds := make([]*tile.Schedule, n)
	for i := 0; i < n; i++ {
		a := cfg.Arch[i]
		sched, err := tile.BuildCached(cfg.Nets[i], tile.Params{
			Array:      a.Array,
			Dataflow:   a.Dataflow,
			SPMBytes:   a.SPMBytes,
			DTypeBytes: a.DTypeBytes,
			BlockBytes: a.BlockBytes,
		})
		if err != nil {
			return Result{}, fmt.Errorf("sim: core %d: %w", i, err)
		}
		scheds[i] = sched
		dom := clock.NewDomain(a.FreqHz, clock.Hz(cfg.DRAM.FreqHz))
		submitter := npu.Submitter(unit)
		if ek != nil {
			submitter = &wakeSubmitter{mmu: unit, ek: ek, mmuID: memory.Channels(), start: starts[i]}
		}
		core, err := npu.NewCore(i, a, sched, dom, submitter, ids)
		if err != nil {
			return Result{}, err
		}
		if cfg.OnIssue != nil {
			core.OnIssue = cfg.OnIssue
		}
		core.Obs = sink
		core.ObsCycleOffset = starts[i]
		cores[i] = core
	}

	// Per-core transfer accounting (plus the caller's hook).
	dataBytes := make([]int64, n)
	ptBytes := make([]int64, n)
	memory.OnTransfer = func(now clock.Global, core int, bytes int, class mem.Class) {
		if core >= 0 && core < n {
			if class == mem.PageTable {
				ptBytes[core] += int64(bytes)
			} else {
				dataBytes[core] += int64(bytes)
			}
		}
		if cfg.OnTransfer != nil {
			cfg.OnTransfer(now, core, bytes, class)
		}
	}

	sys := &system{
		cfg:    cfg,
		memory: memory,
		unit:   unit,
		cores:  cores,
		starts: starts,
		sink:   sink,
	}

	if sink != nil {
		sink.Emit(obs.Event{Cycle: 0, Kind: obs.KindRunStart, Core: -1, A: int64(n), Str: cfg.Sharing.String()})
		for i := 0; i < n; i++ {
			sink.Emit(obs.Event{Cycle: 0, Kind: obs.KindCoreInfo, Core: int32(i), Str: cfg.Nets[i].Name})
		}
		sys.finished = make([]bool, n)
	}

	var hpRun int64
	if cfg.HostProf != nil {
		hpRun = hostprof.Now()
	}
	var now clock.Global
	if kern == KernelTick {
		now, err = sys.runTick(ctx)
	} else {
		now, err = sys.runEvent(ctx, ek)
	}
	if cfg.HostProf != nil {
		cfg.HostProf.Add(hostprof.SecRun, hostprof.Now()-hpRun)
	}
	if err != nil {
		return Result{}, err
	}

	if sink != nil {
		sink.Emit(obs.Event{Cycle: now, Kind: obs.KindRunEnd, Core: -1, A: now.Int64(), B: sys.loopIters})
	}
	if reg != nil {
		// Kernel cost counters, written directly (not via the probe
		// stream, which stays identical across kernels): component-tick
		// invocations, and for the event kernel its heap traffic.
		reg.Counter("sim.component_ticks").Add(sys.compTicks)
		if ek != nil {
			reg.Counter("sim.heap_pops").Add(ek.pops)
		}
		cfg.HostProf.Publish(reg)
	}
	if cfg.OnLoopStats != nil {
		// Deprecated shim: the loop bookkeeping now flows through the
		// probe stream into the registry; replay it from a snapshot.
		snap := reg.Snapshot()
		cfg.OnLoopStats(snap.Value("sim.loop_iters"), snap.Value("sim.skip_windows"), snap.Value("sim.skipped_cycles"))
	}

	res := Result{
		Cores:        make([]CoreResult, n),
		GlobalCycles: now.Int64(),
		DRAM:         memory.Stats(),
		Sharing:      cfg.Sharing,
	}
	for i, c := range cores {
		st := c.Stats()
		res.Cores[i] = CoreResult{
			Net:            cfg.Nets[i].Name,
			Cycles:         st.FirstIterCycles,
			Utilization:    st.Utilization(cfg.Arch[i]),
			Iterations:     st.Iterations,
			TrafficBytes:   scheds[i].TrafficBytes(),
			FootprintBytes: scheds[i].FootprintBytes,
			LayerEndCycles: st.LayerEndCycles,
			NPU:            st,
			MMU:            unit.Stats(i),
			DataBytes:      dataBytes[i],
			PTBytes:        ptBytes[i],
		}
		if !cfg.NoTranslation {
			res.Cores[i].TLBHitRate = unit.TLBFor(i).HitRate()
		}
	}
	return res, nil
}

// runTick is the legacy tick-everything loop: every component ticks on
// every global cycle, with a fast-forward across windows in which no
// component can change state. It returns the final global cycle count.
func (s *system) runTick(ctx context.Context) (clock.Global, error) {
	cfg := s.cfg
	chTicks := int64(s.memory.Channels())
	hp := cfg.HostProf

	// done is nil for context.Background(), turning every cancellation
	// poll into a single branch.
	done := ctx.Done()

	var now clock.Global
	var prevNow clock.Global = -1
	for !s.allDone() {
		if done != nil && s.loopIters&cancelCheckMask == 0 {
			select {
			case <-done:
				return 0, s.cancelled(ctx, now)
			default:
			}
		}
		s.loopIters++
		if invariant.Enabled {
			invariant.Check(now > prevNow,
				"sim: global clock not monotonic: %d after %d", now, prevNow)
			prevNow = now
		}
		if cfg.MaxGlobalCycles > 0 && now > cfg.MaxGlobalCycles {
			return 0, fmt.Errorf("sim: exceeded MaxGlobalCycles=%d (deadlock or runaway config)", cfg.MaxGlobalCycles)
		}
		// Host-time ladder: one clock read per section boundary, and none
		// at all when no profiler is attached.
		var hpT int64
		if hp != nil {
			hpT = hostprof.Now()
		}
		s.memory.Tick(now)
		if hp != nil {
			hpT = hp.AddSince(hostprof.SecTickDRAM, hpT)
		}
		s.unit.Tick(now)
		if hp != nil {
			hpT = hp.AddSince(hostprof.SecTickMMU, hpT)
		}
		s.compTicks += chTicks + 1
		for i, c := range s.cores {
			if now < s.starts[i] {
				continue
			}
			c.Tick(now - s.starts[i])
			s.compTicks++
		}
		if hp != nil {
			hpT = hp.AddSince(hostprof.SecTickCore, hpT)
		}
		s.phaseScan(now)
		// Event skipping: every component reports the earliest cycle at
		// which its state can change. The horizon must be computed after
		// the ticks — a request submitted this cycle may have armed the
		// MMU or DRAM. Anything at or before now+1 means the next cycle
		// must tick normally; otherwise no component changes state in
		// (now, next), so the window is fast-forwarded and the ticks it
		// would have run are no-ops by construction.
		next := s.memory.NextEventAfter(now)
		if next > now+1 {
			if e := s.unit.NextEventAfter(now); e < next {
				next = e
			}
		}
		if next > now+1 {
			for i, c := range s.cores {
				if now < s.starts[i] {
					next = min(next, s.starts[i])
				} else if e := c.NextEventAfter(now-s.starts[i]) + s.starts[i]; e < next {
					next = e
				}
				if next <= now+1 {
					break
				}
			}
		}
		if next <= now+1 {
			if hp != nil {
				hp.AddSince(hostprof.SecKernelHeap, hpT)
			}
			now++
			continue
		}
		if next >= farFuture {
			return 0, fmt.Errorf("sim: system wedged at cycle %d with no pending events: %s", now, describeWedge(s.cores, s.unit))
		}
		if invariant.Enabled {
			invariant.Check(next > now+1,
				"sim: fast-forward target %d does not advance past %d", next, now)
		}
		if done != nil {
			select {
			case <-done:
				return 0, s.cancelled(ctx, now)
			default:
			}
		}
		s.loopSkips++
		s.loopSkipped += (next - now - 1).Int64()
		if s.sink != nil {
			s.sink.Emit(obs.Event{Cycle: now, Kind: obs.KindSkipWindow, Core: -1, A: (next - now - 1).Int64()})
		}
		s.memory.SkipTo(next)
		s.unit.SkipTo(next)
		for i, c := range s.cores {
			if now >= s.starts[i] {
				c.SkipTo(next - s.starts[i])
			}
		}
		if hp != nil {
			hp.AddSince(hostprof.SecKernelHeap, hpT)
		}
		now = next
	}
	return now, nil
}

// RunIdeal runs each core's workload alone on the Ideal configuration
// derived from cfg, returning one single-core result per workload. These
// are the normalization baselines for speedup and slowdown.
func RunIdeal(cfg Config) ([]CoreResult, error) {
	return RunIdealContext(context.Background(), cfg)
}

// RunIdealContext is RunIdeal with cancellation; the per-core Ideal runs
// execute sequentially, each under ctx.
func RunIdealContext(ctx context.Context, cfg Config) ([]CoreResult, error) {
	out := make([]CoreResult, cfg.Cores())
	for i := range out {
		r, err := RunContext(ctx, IdealFor(cfg, i))
		if err != nil {
			return nil, fmt.Errorf("sim: ideal run for core %d: %w", i, err)
		}
		out[i] = r.Cores[0]
	}
	return out, nil
}

// describeWedge reports per-core pipeline state for the wedge error.
func describeWedge(cores []*npu.Core, unit *mmu.MMU) string {
	s := ""
	for i, c := range cores {
		s += fmt.Sprintf(" core%d{%s pendingWalks=%d walkersInUse=%d}", i, c.DebugState(), unit.PendingWalks(i), unit.WalkersInUse(i))
	}
	return s
}
