// Package stats provides the combinatorics and regression machinery the
// evaluation needs: multiset combinations for workload mixes (M(8,2)=36,
// M(8,4)=330, M(8,8)=6435), perfect matchings for core pairings, and a
// least-squares solver for the performance prediction model.
package stats

// Multisets enumerates all multisets of size k drawn from n items,
// represented as sorted index slices (repetition allowed). The count is
// M(n,k) = C(n+k-1, k), matching the paper's mix counts.
func Multisets(n, k int) [][]int {
	if n <= 0 || k <= 0 {
		return nil
	}
	var out [][]int
	cur := make([]int, k)
	var rec func(pos, start int)
	rec = func(pos, start int) {
		if pos == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for v := start; v < n; v++ {
			cur[pos] = v
			rec(pos+1, v)
		}
	}
	rec(0, 0)
	return out
}

// MultisetCount returns M(n,k) = C(n+k-1, k).
func MultisetCount(n, k int) int {
	return Binomial(n+k-1, k)
}

// Binomial returns C(n, k) using exact integer arithmetic; it panics on
// overflow of int64 intermediate products for the sizes used here.
func Binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for i := 1; i <= k; i++ {
		r = r * int64(n-k+i) / int64(i)
	}
	return int(r)
}

// Pairings enumerates all ways to partition the items 0..n-1 (n even)
// into unordered pairs. For n=8 there are 7!! = 105 pairings — the
// mapping choices when placing eight workloads onto four dual-core NPUs
// (§4.6).
func Pairings(n int) [][][2]int {
	if n <= 0 || n%2 != 0 {
		return nil
	}
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	var out [][][2]int
	cur := make([][2]int, 0, n/2)
	var rec func(remaining []int)
	rec = func(remaining []int) {
		if len(remaining) == 0 {
			out = append(out, append([][2]int(nil), cur...))
			return
		}
		first := remaining[0]
		for i := 1; i < len(remaining); i++ {
			partner := remaining[i]
			rest := make([]int, 0, len(remaining)-2)
			rest = append(rest, remaining[1:i]...)
			rest = append(rest, remaining[i+1:]...)
			cur = append(cur, [2]int{first, partner})
			rec(rest)
			cur = cur[:len(cur)-1]
		}
	}
	rec(items)
	return out
}

// DoubleFactorialOdd returns (2k-1)!! — the number of perfect matchings
// of 2k items.
func DoubleFactorialOdd(k int) int {
	r := 1
	for i := 2*k - 1; i > 1; i -= 2 {
		r *= i
	}
	return r
}
