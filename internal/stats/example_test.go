package stats_test

import (
	"fmt"

	"mnpusim/internal/stats"
)

func ExampleMultisetCount() {
	// The paper's mix counts: M(8,2), M(8,4), M(8,8).
	fmt.Println(stats.MultisetCount(8, 2), stats.MultisetCount(8, 4), stats.MultisetCount(8, 8))
	// Output: 36 330 6435
}

func ExamplePairings() {
	// Ways to place four workloads onto two dual-core NPUs.
	fmt.Println(len(stats.Pairings(4)))
	// Output: 3
}
