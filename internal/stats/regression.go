package stats

import (
	"fmt"
	"math"
)

// LeastSquares fits y ≈ X·beta by ordinary least squares using the
// normal equations with Gaussian elimination and partial pivoting. X is
// row-major: one row per observation. The caller includes an intercept
// by adding a constant-1 column.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: need matching non-empty X (%d) and y (%d)", n, len(y))
	}
	p := len(x[0])
	if p == 0 {
		return nil, fmt.Errorf("stats: zero predictors")
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(row), p)
		}
	}
	if n < p {
		return nil, fmt.Errorf("stats: underdetermined system: %d rows for %d predictors", n, p)
	}

	// Normal equations: (X'X) beta = X'y.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p+1) // augmented with X'y
	}
	for _, row := range x {
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for k, row := range x {
		for i := 0; i < p; i++ {
			xtx[i][p] += row[i] * y[k]
		}
	}
	// Small ridge term for numerical stability on collinear features.
	for i := 0; i < p; i++ {
		xtx[i][i] += 1e-9
	}
	return solveAugmented(xtx)
}

// solveAugmented solves the p x (p+1) augmented system in place.
func solveAugmented(a [][]float64) ([]float64, error) {
	p := len(a)
	for col := 0; col < p; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < p; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			return nil, fmt.Errorf("stats: singular system at column %d", col)
		}
		inv := 1 / a[col][col]
		for j := col; j <= p; j++ {
			a[col][j] *= inv
		}
		for r := 0; r < p; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := col; j <= p; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	beta := make([]float64, p)
	for i := range beta {
		beta[i] = a[i][p]
	}
	return beta, nil
}

// Predict evaluates the fitted model on one feature row.
func Predict(beta, row []float64) float64 {
	s := 0.0
	for i, b := range beta {
		s += b * row[i]
	}
	return s
}

// R2 returns the coefficient of determination of predictions yhat
// against observations y.
func R2(y, yhat []float64) float64 {
	if len(y) == 0 || len(y) != len(yhat) {
		return math.NaN()
	}
	mu := 0.0
	for _, v := range y {
		mu += v
	}
	mu /= float64(len(y))
	var ssRes, ssTot float64
	for i := range y {
		ssRes += (y[i] - yhat[i]) * (y[i] - yhat[i])
		ssTot += (y[i] - mu) * (y[i] - mu)
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}
