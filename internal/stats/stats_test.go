package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{8, 2, 28}, {9, 2, 36}, {11, 4, 330}, {15, 8, 6435},
		{5, 0, 1}, {5, 5, 1}, {5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestMultisetCountsMatchPaper(t *testing.T) {
	// §4.1.1: M(8,2)=36 dual mixes, M(8,4)=330 quad mixes; §4.6.2:
	// M(8,8)=6435 eight-workload sets.
	if MultisetCount(8, 2) != 36 {
		t.Errorf("M(8,2) = %d", MultisetCount(8, 2))
	}
	if MultisetCount(8, 4) != 330 {
		t.Errorf("M(8,4) = %d", MultisetCount(8, 4))
	}
	if MultisetCount(8, 8) != 6435 {
		t.Errorf("M(8,8) = %d", MultisetCount(8, 8))
	}
}

func TestMultisetsEnumeration(t *testing.T) {
	sets := Multisets(3, 2)
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}}
	if len(sets) != len(want) {
		t.Fatalf("got %d multisets: %v", len(sets), sets)
	}
	for i := range want {
		for j := range want[i] {
			if sets[i][j] != want[i][j] {
				t.Fatalf("sets[%d] = %v, want %v", i, sets[i], want[i])
			}
		}
	}
	if Multisets(0, 2) != nil || Multisets(2, 0) != nil {
		t.Error("degenerate multisets should be nil")
	}
}

func TestMultisetsSizesMatchCount(t *testing.T) {
	for n := 1; n <= 6; n++ {
		for k := 1; k <= 4; k++ {
			if got := len(Multisets(n, k)); got != MultisetCount(n, k) {
				t.Errorf("len(Multisets(%d,%d)) = %d, want %d", n, k, got, MultisetCount(n, k))
			}
		}
	}
}

func TestMultisetsAreSorted(t *testing.T) {
	for _, s := range Multisets(5, 3) {
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				t.Fatalf("multiset %v not sorted", s)
			}
		}
	}
}

func TestPairingsCount(t *testing.T) {
	// (2k-1)!! perfect matchings: 8 items -> 105 (the paper's mapping
	// choices for 4 dual-core NPUs).
	if got := len(Pairings(8)); got != 105 {
		t.Errorf("pairings(8) = %d, want 105", got)
	}
	if got := len(Pairings(4)); got != 3 {
		t.Errorf("pairings(4) = %d, want 3", got)
	}
	if Pairings(3) != nil || Pairings(0) != nil {
		t.Error("odd or zero n should give nil")
	}
	if DoubleFactorialOdd(4) != 105 {
		t.Errorf("7!! = %d", DoubleFactorialOdd(4))
	}
}

func TestPairingsAreValidPartitions(t *testing.T) {
	for _, p := range Pairings(6) {
		seen := map[int]bool{}
		for _, pair := range p {
			for _, v := range pair {
				if seen[v] {
					t.Fatalf("item %d repeated in %v", v, p)
				}
				seen[v] = true
			}
		}
		if len(seen) != 6 {
			t.Fatalf("pairing %v does not cover all items", p)
		}
	}
}

func TestPairingsDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range Pairings(6) {
		key := ""
		for _, pair := range p {
			a, b := pair[0], pair[1]
			if a > b {
				a, b = b, a
			}
			key += string(rune('a'+a)) + string(rune('a'+b))
		}
		if seen[key] {
			t.Fatalf("duplicate pairing %v", p)
		}
		seen[key] = true
	}
}

func TestLeastSquaresRecoversExactModel(t *testing.T) {
	// y = 3 + 2a - b
	var x [][]float64
	var y []float64
	for a := 0.0; a < 5; a++ {
		for b := 0.0; b < 5; b++ {
			x = append(x, []float64{1, a, b})
			y = append(y, 3+2*a-b)
		}
	}
	beta, err := LeastSquares(x, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(beta[i]-want[i]) > 1e-6 {
			t.Errorf("beta[%d] = %v, want %v", i, beta[i], want[i])
		}
	}
	yhat := make([]float64, len(y))
	for i := range y {
		yhat[i] = Predict(beta, x[i])
	}
	if r2 := R2(y, yhat); r2 < 0.999999 {
		t.Errorf("R2 = %v", r2)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := LeastSquares([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
	if _, err := LeastSquares([][]float64{{1}, {2, 3}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := LeastSquares([][]float64{{}, {}}, []float64{1, 2}); err == nil {
		t.Error("zero predictors accepted")
	}
}

func TestR2Degenerate(t *testing.T) {
	if !math.IsNaN(R2(nil, nil)) {
		t.Error("empty R2 should be NaN")
	}
	if !math.IsNaN(R2([]float64{2, 2}, []float64{2, 2})) {
		t.Error("zero-variance R2 should be NaN")
	}
}

// Property: least squares on noiseless linear data recovers predictions
// exactly (even if coefficients are not unique).
func TestQuickLeastSquaresInterpolates(t *testing.T) {
	f := func(c0Raw, c1Raw int8, seeds []uint8) bool {
		if len(seeds) < 6 {
			return true
		}
		c0, c1 := float64(c0Raw)/16, float64(c1Raw)/16
		var x [][]float64
		var y []float64
		for i, s := range seeds {
			a := float64(s) / 8
			x = append(x, []float64{1, a + float64(i%3)})
			y = append(y, c0+c1*(a+float64(i%3)))
		}
		beta, err := LeastSquares(x, y)
		if err != nil {
			return true // collinear draws are fine to skip
		}
		for i := range x {
			if math.Abs(Predict(beta, x[i])-y[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
