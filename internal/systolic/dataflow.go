package systolic

import "fmt"

// Dataflow selects how operands map onto the array. The paper's
// evaluation uses the output-stationary dataflow and lists
// weight-stationary as future work; both are implemented here, and the
// dataflow ablation benchmark compares them.
type Dataflow uint8

const (
	// OutputStationary pins one output element per PE; operands stream
	// through. This is mNPUsim's (and the paper's) dataflow.
	OutputStationary Dataflow = iota
	// WeightStationary pins a Rows x Cols tile of the weight matrix in
	// the PEs (TPU-style); inputs stream through and partial sums
	// drain. Weights reload once per fold, so it rewards large M and
	// punishes batch-1 GEMMs.
	WeightStationary
)

func (d Dataflow) String() string {
	if d == WeightStationary {
		return "weight-stationary"
	}
	return "output-stationary"
}

// GEMMWith returns the cost of an M x K x N GEMM under the given
// dataflow.
//
// Output-stationary is Array.GEMM. Weight-stationary tiles the weight
// matrix into ceil(K/Rows) x ceil(N/Cols) folds; each fold first loads
// its weights into the PEs (Rows cycles) and then streams the M input
// rows through the array (M + Rows + Cols - 2 cycles of skewed
// pipeline), accumulating partial sums across the K folds.
func (a Array) GEMMWith(d Dataflow, m, k, n int) Cost {
	if d == OutputStationary {
		return a.GEMM(m, k, n)
	}
	if m <= 0 || k <= 0 || n <= 0 {
		return Cost{}
	}
	foldsK := int64(ceilDiv(k, a.Rows))
	foldsN := int64(ceilDiv(n, a.Cols))
	folds := foldsK * foldsN
	perFold := int64(a.Rows + m + a.Rows + a.Cols - 2)
	return Cost{
		Cycles: folds * perFold,
		MACs:   int64(m) * int64(k) * int64(n),
		Folds:  folds,
	}
}

// ParseDataflow parses "os"/"output-stationary" or
// "ws"/"weight-stationary".
func ParseDataflow(s string) (Dataflow, error) {
	switch s {
	case "os", "output-stationary", "":
		return OutputStationary, nil
	case "ws", "weight-stationary":
		return WeightStationary, nil
	}
	return 0, fmt.Errorf("systolic: unknown dataflow %q (want os or ws)", s)
}
