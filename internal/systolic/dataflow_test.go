package systolic

import (
	"testing"
	"testing/quick"
)

func TestDataflowString(t *testing.T) {
	if OutputStationary.String() != "output-stationary" || WeightStationary.String() != "weight-stationary" {
		t.Error("dataflow strings wrong")
	}
}

func TestParseDataflow(t *testing.T) {
	for in, want := range map[string]Dataflow{
		"os": OutputStationary, "output-stationary": OutputStationary, "": OutputStationary,
		"ws": WeightStationary, "weight-stationary": WeightStationary,
	} {
		got, err := ParseDataflow(in)
		if err != nil || got != want {
			t.Errorf("ParseDataflow(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseDataflow("rs"); err == nil {
		t.Error("unknown dataflow accepted")
	}
}

func TestGEMMWithOSMatchesGEMM(t *testing.T) {
	a := Array{Rows: 16, Cols: 16}
	for _, dims := range [][3]int{{16, 100, 16}, {1, 64, 256}, {33, 7, 9}} {
		os := a.GEMMWith(OutputStationary, dims[0], dims[1], dims[2])
		direct := a.GEMM(dims[0], dims[1], dims[2])
		if os != direct {
			t.Errorf("GEMMWith(OS, %v) = %+v, GEMM = %+v", dims, os, direct)
		}
	}
}

func TestWeightStationaryFolds(t *testing.T) {
	a := Array{Rows: 16, Cols: 16}
	c := a.GEMMWith(WeightStationary, 100, 16, 16)
	if c.Folds != 1 {
		t.Errorf("folds = %d, want 1 (weights fit the array)", c.Folds)
	}
	// One fold: weight fill + skewed input stream.
	want := int64(16 + 100 + 16 + 16 - 2)
	if c.Cycles != want {
		t.Errorf("cycles = %d, want %d", c.Cycles, want)
	}
	c2 := a.GEMMWith(WeightStationary, 100, 32, 48)
	if c2.Folds != 2*3 {
		t.Errorf("folds = %d, want 6", c2.Folds)
	}
}

func TestWeightStationaryDegenerate(t *testing.T) {
	a := Array{Rows: 8, Cols: 8}
	if c := a.GEMMWith(WeightStationary, 0, 4, 4); c.Cycles != 0 {
		t.Errorf("degenerate WS: %+v", c)
	}
}

func TestDataflowCharacter(t *testing.T) {
	a := Array{Rows: 16, Cols: 16}
	// Batch-1 GEMM (RNN step): OS amortizes over K, WS reloads weights
	// per fold — WS must be much slower.
	osThin := a.GEMMWith(OutputStationary, 1, 512, 512)
	wsThin := a.GEMMWith(WeightStationary, 1, 512, 512)
	if wsThin.Cycles <= osThin.Cycles {
		t.Errorf("WS should lose on batch-1: os=%d ws=%d", osThin.Cycles, wsThin.Cycles)
	}
	// Large-M GEMM with small K: WS streams the batch past resident
	// weights and wins.
	osFat := a.GEMMWith(OutputStationary, 4096, 16, 16)
	wsFat := a.GEMMWith(WeightStationary, 4096, 16, 16)
	if wsFat.Cycles >= osFat.Cycles {
		t.Errorf("WS should win on large-M small-K: os=%d ws=%d", osFat.Cycles, wsFat.Cycles)
	}
}

// Property: both dataflows count identical MACs and keep utilization in
// (0, 1].
func TestQuickDataflowInvariants(t *testing.T) {
	a := Array{Rows: 8, Cols: 8}
	f := func(mRaw, kRaw, nRaw uint8, ws bool) bool {
		m, k, n := int(mRaw)+1, int(kRaw)+1, int(nRaw)+1
		d := OutputStationary
		if ws {
			d = WeightStationary
		}
		c := a.GEMMWith(d, m, k, n)
		if c.MACs != int64(m)*int64(k)*int64(n) {
			return false
		}
		u := c.Utilization(a)
		return u > 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
