package systolic_test

import (
	"fmt"

	"mnpusim/internal/systolic"
)

func ExampleArray_GEMM() {
	a := systolic.Array{Rows: 16, Cols: 16}
	c := a.GEMM(16, 100, 16)
	fmt.Printf("cycles=%d folds=%d util=%.2f\n", c.Cycles, c.Folds, c.Utilization(a))
	// Output: cycles=130 folds=1 util=0.77
}
