// Package systolic provides an analytical timing model of a systolic
// array executing GEMM with the output-stationary dataflow, in the
// style of SCALE-Sim, which mNPUsim's compute model follows. The paper
// implements the output-stationary dataflow only (weight-stationary is
// listed as future work), and so do we.
package systolic

import "fmt"

// Array is a Rows x Cols grid of processing elements, each performing
// one multiply-accumulate per cycle.
type Array struct {
	Rows int
	Cols int
}

// Validate reports an error on a degenerate geometry.
func (a Array) Validate() error {
	if a.Rows <= 0 || a.Cols <= 0 {
		return fmt.Errorf("systolic: array must be positive, got %dx%d", a.Rows, a.Cols)
	}
	return nil
}

// PEs returns the number of processing elements.
func (a Array) PEs() int { return a.Rows * a.Cols }

func (a Array) String() string { return fmt.Sprintf("%dx%d", a.Rows, a.Cols) }

// Cost is the timing result for one GEMM on the array.
type Cost struct {
	// Cycles is the total NPU-clock cycles occupied by the array.
	Cycles int64
	// MACs is the number of useful multiply-accumulates (M*K*N).
	MACs int64
	// Folds is the number of output-tile passes over the array.
	Folds int64
}

// Utilization returns MACs / (PEs * Cycles): the fraction of PE-cycles
// doing useful work, the paper's PE-utilization output.
func (c Cost) Utilization(a Array) float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.MACs) / (float64(a.PEs()) * float64(c.Cycles))
}

// GEMM returns the cost of an M x K x N matrix multiplication
// (A[M,K] * B[K,N]) under the output-stationary dataflow.
//
// The output is tiled into ceil(M/Rows) x ceil(N/Cols) folds. In each
// fold every PE accumulates one output element: operands are skewed into
// the array over its occupied rows, K partial products accumulate over K
// cycles, and results drain over its occupied columns, giving
// K + rows + cols - 2 cycles per fold (the SCALE-Sim output-stationary
// formula, with the skew/drain lengths of the fold actually computed —
// a fold occupying one row fills in one cycle, not Rows cycles).
// Summed over the fold grid this gives the closed form below: the
// occupied rows of a column of folds total M and the occupied columns
// of a row of folds total N.
//
// If a dimension is smaller than the array (e.g. a thin tensor on a
// 128-wide array), whole rows or columns of PEs idle for the entire
// fold — the under-utilization that motivates multi-core NPUs (§2.1).
func (a Array) GEMM(m, k, n int) Cost {
	if m <= 0 || k <= 0 || n <= 0 {
		return Cost{}
	}
	foldsM := int64(ceilDiv(m, a.Rows))
	foldsN := int64(ceilDiv(n, a.Cols))
	folds := foldsM * foldsN
	cycles := folds*int64(k-2) + foldsN*int64(m) + foldsM*int64(n)
	return Cost{
		Cycles: cycles,
		MACs:   int64(m) * int64(k) * int64(n),
		Folds:  folds,
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
