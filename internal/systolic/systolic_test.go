package systolic

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (Array{Rows: 16, Cols: 16}).Validate(); err != nil {
		t.Errorf("valid array rejected: %v", err)
	}
	for _, a := range []Array{{0, 16}, {16, 0}, {-1, -1}} {
		if err := a.Validate(); err == nil {
			t.Errorf("%v accepted", a)
		}
	}
}

func TestPEsAndString(t *testing.T) {
	a := Array{Rows: 128, Cols: 128}
	if a.PEs() != 16384 {
		t.Errorf("PEs() = %d", a.PEs())
	}
	if a.String() != "128x128" {
		t.Errorf("String() = %q", a.String())
	}
}

func TestGEMMSingleFold(t *testing.T) {
	a := Array{Rows: 16, Cols: 16}
	c := a.GEMM(16, 100, 16)
	if c.Folds != 1 {
		t.Errorf("folds = %d, want 1", c.Folds)
	}
	want := int64(100 + 16 + 16 - 2)
	if c.Cycles != want {
		t.Errorf("cycles = %d, want %d", c.Cycles, want)
	}
	if c.MACs != 16*100*16 {
		t.Errorf("MACs = %d", c.MACs)
	}
}

func TestGEMMFoldCount(t *testing.T) {
	a := Array{Rows: 16, Cols: 16}
	cases := []struct {
		m, n  int
		folds int64
	}{
		{16, 16, 1}, {17, 16, 2}, {16, 17, 2}, {32, 32, 4}, {33, 33, 9}, {1, 1, 1},
	}
	for _, c := range cases {
		got := a.GEMM(c.m, 8, c.n)
		if got.Folds != c.folds {
			t.Errorf("GEMM(%d,8,%d).Folds = %d, want %d", c.m, c.n, got.Folds, c.folds)
		}
	}
}

func TestGEMMDegenerateDims(t *testing.T) {
	a := Array{Rows: 8, Cols: 8}
	for _, dims := range [][3]int{{0, 5, 5}, {5, 0, 5}, {5, 5, 0}, {-1, 2, 2}} {
		if c := a.GEMM(dims[0], dims[1], dims[2]); c.Cycles != 0 || c.MACs != 0 {
			t.Errorf("GEMM(%v) = %+v, want zero", dims, c)
		}
	}
}

func TestUtilizationFullSquare(t *testing.T) {
	// A GEMM exactly matching the array with huge K approaches full
	// utilization.
	a := Array{Rows: 16, Cols: 16}
	c := a.GEMM(16, 100000, 16)
	if u := c.Utilization(a); u < 0.99 || u > 1.0 {
		t.Errorf("utilization = %v, want ~1", u)
	}
}

func TestUtilizationThinGEMM(t *testing.T) {
	// M=1 uses one row of PEs: utilization bounded by 1/Rows.
	a := Array{Rows: 16, Cols: 16}
	c := a.GEMM(1, 10000, 16)
	if u := c.Utilization(a); u > 1.0/16+0.01 {
		t.Errorf("thin GEMM utilization = %v, want <= ~1/16", u)
	}
}

func TestUtilizationZeroCycles(t *testing.T) {
	if (Cost{}).Utilization(Array{Rows: 2, Cols: 2}) != 0 {
		t.Error("zero-cost utilization should be 0")
	}
}

// Property: utilization is always in (0, 1] for positive dims.
func TestQuickUtilizationBounded(t *testing.T) {
	a := Array{Rows: 16, Cols: 16}
	f := func(mRaw, kRaw, nRaw uint8) bool {
		m, k, n := int(mRaw)+1, int(kRaw)+1, int(nRaw)+1
		u := a.GEMM(m, k, n).Utilization(a)
		return u > 0 && u <= 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cycles are monotone non-decreasing in every dimension.
func TestQuickCyclesMonotone(t *testing.T) {
	a := Array{Rows: 8, Cols: 8}
	f := func(mRaw, kRaw, nRaw uint8) bool {
		m, k, n := int(mRaw)+1, int(kRaw)+1, int(nRaw)+1
		base := a.GEMM(m, k, n).Cycles
		return a.GEMM(m+1, k, n).Cycles >= base &&
			a.GEMM(m, k+1, n).Cycles >= base &&
			a.GEMM(m, k, n+1).Cycles >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a larger array never needs more cycles for the same GEMM.
func TestQuickBiggerArrayNotSlower(t *testing.T) {
	small := Array{Rows: 8, Cols: 8}
	big := Array{Rows: 16, Cols: 16}
	f := func(mRaw, kRaw, nRaw uint8) bool {
		m, k, n := int(mRaw)+1, int(kRaw)+8, int(nRaw)+1
		return big.GEMM(m, k, n).Cycles <= small.GEMM(m, k, n).Cycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
