package tile

import (
	"fmt"

	"mnpusim/internal/model"
)

// Build compiles a network into a tile schedule for one core.
//
// Tensor layout: each op's weight matrix gets a fresh page-aligned
// region; an op's input reuses the previous op's output region when the
// dimensions chain exactly (FC/MLP stacks), and otherwise gets a fresh
// region (conv inputs are im2col buffers prepared by the host, per the
// paper's early-im2col choice). Embedding tables are allocated at their
// full size and gathered from sparsely.
func Build(net model.Network, p Params) (*Schedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	ops := net.Lower()
	if len(ops) == 0 {
		return nil, fmt.Errorf("tile: network %q lowered to no ops", net.Name)
	}

	va := &vaAllocator{next: 0x1000_0000, align: uint64(p.align())}
	d := int64(p.DTypeBytes)

	s := &Schedule{
		Net:    net.Name,
		Params: p,
		Layers: make(map[int][]int),
	}

	var prevOutBase uint64
	var prevOutElems int64
	for oi, op := range ops {
		var inBase uint64
		switch {
		case op.Gather:
			inBase = va.alloc(int64(op.TableRows) * int64(op.N) * d)
		case oi > 0 && prevOutElems == op.InputElems():
			inBase = prevOutBase
		default:
			inBase = va.alloc(op.InputElems() * d)
		}
		var wBase uint64
		if !op.Gather {
			wBase = va.alloc(op.WeightElems() * d)
		}
		outBase := va.alloc(op.OutputElems() * d)

		if err := buildOp(s, oi, op, p, inBase, wBase, outBase); err != nil {
			return nil, err
		}
		prevOutBase, prevOutElems = outBase, op.OutputElems()
	}

	for ti := range s.Tasks {
		t := &s.Tasks[ti]
		s.Layers[t.Layer] = append(s.Layers[t.Layer], ti)
		s.TotalComputeCycles += t.ComputeCycles
		s.TotalMACs += t.MACs
		s.TotalLoadBytes += t.LoadBytes()
		s.TotalStoreBytes += t.StoreBytes()
	}
	s.FootprintBytes = int64(va.next - 0x1000_0000)
	return s, nil
}

// buildOp appends the tiles of one op to the schedule.
func buildOp(s *Schedule, oi int, op model.Op, p Params, inBase, wBase, outBase uint64) error {
	tl, err := chooseTiling(op, p)
	if err != nil {
		return fmt.Errorf("tile: %s: %w", s.Net, err)
	}
	d := int64(p.DTypeBytes)
	mTiles := ceilDiv(op.M, tl.mt)
	nTiles := ceilDiv(op.N, tl.nt)
	kTiles := ceilDiv(op.K, tl.kt)

	for mi := 0; mi < mTiles; mi++ {
		mLo := mi * tl.mt
		mA := min(tl.mt, op.M-mLo)
		for ni := 0; ni < nTiles; ni++ {
			nLo := ni * tl.nt
			nA := min(tl.nt, op.N-nLo)
			for ki := 0; ki < kTiles; ki++ {
				kLo := ki * tl.kt
				kA := min(tl.kt, op.K-kLo)

				t := Task{
					Op:     oi,
					Layer:  op.Layer,
					Name:   op.Name,
					Gather: op.Gather,
				}
				if op.Gather {
					t.Loads = gatherSlices(op, oi, mLo, mA, inBase, d)
				} else {
					t.Loads = blockSlices(inBase, mLo, mA, kLo, kA, op.K, d)
					t.Loads = append(t.Loads, blockSlices(wBase, kLo, kA, nLo, nA, op.N, d)...)
				}
				if ki == kTiles-1 {
					t.Stores = blockSlices(outBase, mLo, mA, nLo, nA, op.N, d)
				}
				cost := p.Array.GEMMWith(p.Dataflow, mA, kA, nA)
				t.ComputeCycles = cost.Cycles
				t.MACs = cost.MACs
				s.Tasks = append(s.Tasks, t)
			}
		}
	}
	return nil
}

// blockSlices returns the address slices of a rows x cols sub-block of a
// row-major matrix with rowStride columns, merging into one slice when
// the block spans full rows.
func blockSlices(base uint64, rowLo, rows, colLo, cols, rowStride int, d int64) []Slice {
	if cols == rowStride && colLo == 0 {
		return []Slice{{
			Addr:  base + uint64(int64(rowLo)*int64(rowStride)*d),
			Bytes: int64(rows) * int64(rowStride) * d,
		}}
	}
	out := make([]Slice, 0, rows)
	for r := rowLo; r < rowLo+rows; r++ {
		out = append(out, Slice{
			Addr:  base + uint64((int64(r)*int64(rowStride)+int64(colLo))*d),
			Bytes: int64(cols) * d,
		})
	}
	return out
}

// gatherSlices returns the scattered table-row reads of an embedding
// tile: one slice per lookup, at a deterministic pseudo-random row.
func gatherSlices(op model.Op, oi, lookupLo, lookups int, table uint64, d int64) []Slice {
	rowBytes := int64(op.N) * d
	out := make([]Slice, 0, lookups)
	for i := lookupLo; i < lookupLo+lookups; i++ {
		row := splitmix64(uint64(oi)<<32^uint64(i)) % uint64(op.TableRows)
		out = append(out, Slice{
			Addr:  table + uint64(int64(row)*rowBytes),
			Bytes: rowBytes,
		})
	}
	return out
}

// splitmix64 is the SplitMix64 mixing function, used for reproducible
// scattered addresses without a stateful RNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
