package tile

import (
	"fmt"
	"sync"

	"mnpusim/internal/model"
)

// buildCell is one cache entry; Once serializes the single Build for a
// key while letting other keys proceed concurrently.
type buildCell struct {
	once  sync.Once
	sched *Schedule
	err   error
}

var buildCache = struct {
	mu sync.Mutex
	m  map[string]*buildCell
}{m: make(map[string]*buildCell)}

// BuildCached is Build behind a process-wide cache keyed on the full
// network structure and tiling parameters, so the schedule of a (net,
// arch) pair is compiled once no matter how many mixes or experiments
// reuse it. The returned *Schedule is shared across simulations and
// must be treated as immutable — the npu package only ever reads it.
//
// The key must capture the network's layers, not just its name: tests
// and random-network training reuse names with different topologies.
func BuildCached(net model.Network, p Params) (*Schedule, error) {
	key := fmt.Sprintf("%+v|%+v", p, net)
	buildCache.mu.Lock()
	cell, ok := buildCache.m[key]
	if !ok {
		cell = &buildCell{}
		buildCache.m[key] = cell
	}
	buildCache.mu.Unlock()
	cell.once.Do(func() { cell.sched, cell.err = Build(net, p) })
	return cell.sched, cell.err
}
