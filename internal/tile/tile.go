// Package tile implements the software stack of the simulator: mNPUsim's
// "SW request generator". It lays the lowered GEMM operands out in a
// core's virtual address space, splits each operation into tiles sized
// for double buffering (each tile's working set fits half the
// scratchpad), and produces the per-tile memory request slices and
// compute cycles that drive the hardware simulation.
package tile

import (
	"fmt"

	"mnpusim/internal/model"
	"mnpusim/internal/systolic"
)

// Params configures tiling for one core.
type Params struct {
	Array      systolic.Array
	Dataflow   systolic.Dataflow
	SPMBytes   int64
	DTypeBytes int
	// BlockBytes is the off-chip transaction granularity (one DRAM
	// burst, typically 64).
	BlockBytes int
	// TensorAlign aligns each tensor's base virtual address; defaults
	// to 4096 so distinct tensors never share a page.
	TensorAlign int64
}

// Validate checks the parameters can tile at least a minimal block.
func (p Params) Validate() error {
	if err := p.Array.Validate(); err != nil {
		return err
	}
	if p.SPMBytes <= 0 || p.DTypeBytes <= 0 || p.BlockBytes <= 0 {
		return fmt.Errorf("tile: SPMBytes, DTypeBytes, BlockBytes must be positive")
	}
	minSet := int64(p.Array.Rows+p.Array.Cols+p.Array.Rows*p.Array.Cols) * int64(p.DTypeBytes)
	if p.SPMBytes/2 < minSet {
		return fmt.Errorf("tile: SPM half (%d B) cannot hold a minimal %s tile (%d B)",
			p.SPMBytes/2, p.Array, minSet)
	}
	return nil
}

func (p Params) align() int64 {
	if p.TensorAlign > 0 {
		return p.TensorAlign
	}
	return 4096
}

// Slice is a contiguous virtual address range accessed by a tile.
type Slice struct {
	Addr  uint64
	Bytes int64
}

// Task is one tile: the loads that must complete before its compute, the
// compute occupancy, and the stores it emits afterwards.
type Task struct {
	Op    int
	Layer int
	Name  string

	Loads  []Slice
	Stores []Slice

	ComputeCycles int64
	MACs          int64
	// Gather marks tiles of embedding ops (scattered loads).
	Gather bool
}

// LoadBytes sums the load slices.
func (t Task) LoadBytes() int64 {
	var b int64
	for _, s := range t.Loads {
		b += s.Bytes
	}
	return b
}

// StoreBytes sums the store slices.
func (t Task) StoreBytes() int64 {
	var b int64
	for _, s := range t.Stores {
		b += s.Bytes
	}
	return b
}

// Schedule is the complete tile program of one network on one core.
type Schedule struct {
	Net    string
	Params Params
	Tasks  []Task

	// Layers maps layer index -> indices into Tasks, for per-layer
	// cycle reporting.
	Layers map[int][]int

	TotalComputeCycles int64
	TotalMACs          int64
	TotalLoadBytes     int64
	TotalStoreBytes    int64
	// FootprintBytes is the simulator's memory_footprint output: the
	// extent of the virtual address space touched.
	FootprintBytes int64
}

// TrafficBytes returns total off-chip traffic per inference.
func (s *Schedule) TrafficBytes() int64 { return s.TotalLoadBytes + s.TotalStoreBytes }

// IdealUtilization returns MACs / (PEs * compute cycles): PE utilization
// assuming a perfect memory system.
func (s *Schedule) IdealUtilization() float64 {
	if s.TotalComputeCycles == 0 {
		return 0
	}
	return float64(s.TotalMACs) / (float64(s.Params.Array.PEs()) * float64(s.TotalComputeCycles))
}

// vaAllocator hands out page-aligned tensor regions in one core's
// virtual address space.
type vaAllocator struct {
	next  uint64
	align uint64
}

func (a *vaAllocator) alloc(bytes int64) uint64 {
	if bytes <= 0 {
		bytes = 1
	}
	base := a.next
	a.next += (uint64(bytes) + a.align - 1) / a.align * a.align
	return base
}

// tiling is the chosen (Mt, Kt, Nt) decomposition of one op.
type tiling struct {
	mt, kt, nt int
}

// chooseTiling picks the largest output-stationary tile whose working
// set — input Mt x Kt, weight Kt x Nt, output Mt x Nt — fits half the
// scratchpad (the other half holds the in-flight neighbor tile under
// double buffering). It starts from one array pass (Rows x Cols) with
// the full reduction depth and grows M and N alternately.
func chooseTiling(op model.Op, p Params) (tiling, error) {
	half := p.SPMBytes / 2
	d := int64(p.DTypeBytes)
	fits := func(mt, kt, nt int) bool {
		set := (int64(mt)*int64(kt) + int64(kt)*int64(nt) + int64(mt)*int64(nt)) * d
		return set <= half
	}
	mt := min(op.M, p.Array.Rows)
	nt := min(op.N, p.Array.Cols)
	kt := op.K
	for !fits(mt, kt, nt) && kt > 1 {
		kt = (kt + 1) / 2
	}
	if !fits(mt, kt, nt) {
		return tiling{}, fmt.Errorf("tile: op %q (%dx%dx%d) cannot fit SPM half %d B", op.Name, op.M, op.K, op.N, half)
	}
	// Grow M, then N, doubling while the working set still fits.
	for grew := true; grew; {
		grew = false
		if mt < op.M && fits(min(2*mt, op.M), kt, nt) {
			mt = min(2*mt, op.M)
			grew = true
		}
		if nt < op.N && fits(mt, kt, min(2*nt, op.N)) {
			nt = min(2*nt, op.N)
			grew = true
		}
	}
	return tiling{mt: mt, kt: kt, nt: nt}, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
