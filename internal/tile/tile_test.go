package tile

import (
	"testing"
	"testing/quick"

	"mnpusim/internal/model"
	"mnpusim/internal/systolic"
)

func testParams() Params {
	return Params{
		Array:      systolic.Array{Rows: 16, Cols: 16},
		SPMBytes:   64 << 10,
		DTypeBytes: 1,
		BlockBytes: 64,
	}
}

func fcNet(m, k, n int) model.Network {
	return model.Network{Name: "t", Layers: []model.Layer{
		{Name: "fc", Kind: model.FC, M: m, K: k, N: n},
	}}
}

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := testParams()
	bad.SPMBytes = 128 // cannot hold a minimal tile
	if err := bad.Validate(); err == nil {
		t.Error("undersized SPM accepted")
	}
	bad = testParams()
	bad.BlockBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero block accepted")
	}
}

func TestChooseTilingFitsHalfSPM(t *testing.T) {
	p := testParams()
	half := p.SPMBytes / 2
	ops := []model.Op{
		{Name: "small", M: 8, K: 8, N: 8},
		{Name: "square", M: 256, K: 256, N: 256},
		{Name: "thin", M: 1, K: 4096, N: 4096},
		{Name: "wide", M: 4096, K: 16, N: 4096},
	}
	for _, op := range ops {
		tl, err := chooseTiling(op, p)
		if err != nil {
			t.Fatalf("%s: %v", op.Name, err)
		}
		set := int64(tl.mt*tl.kt+tl.kt*tl.nt+tl.mt*tl.nt) * int64(p.DTypeBytes)
		if set > half {
			t.Errorf("%s: tile %+v working set %d > half SPM %d", op.Name, tl, set, half)
		}
		if tl.mt > op.M || tl.kt > op.K || tl.nt > op.N {
			t.Errorf("%s: tile %+v exceeds op dims", op.Name, tl)
		}
	}
}

func TestBuildSingleTileOp(t *testing.T) {
	s, err := Build(fcNet(16, 32, 16), testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tasks) != 1 {
		t.Fatalf("got %d tasks, want 1", len(s.Tasks))
	}
	task := s.Tasks[0]
	if task.LoadBytes() != 16*32+32*16 {
		t.Errorf("loads = %d bytes", task.LoadBytes())
	}
	if task.StoreBytes() != 16*16 {
		t.Errorf("stores = %d bytes", task.StoreBytes())
	}
	if task.ComputeCycles <= 0 || task.MACs != 16*32*16 {
		t.Errorf("compute: %+v", task)
	}
}

func TestBuildTiledOpCoversOutput(t *testing.T) {
	// Big enough to need several tiles.
	net := fcNet(64, 2048, 64)
	s, err := Build(net, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tasks) < 2 {
		t.Fatalf("expected multiple tiles, got %d", len(s.Tasks))
	}
	// Total MACs across tiles must equal the op's MACs exactly.
	var macs int64
	for _, task := range s.Tasks {
		macs += task.MACs
	}
	if want := int64(64) * 2048 * 64; macs != want {
		t.Errorf("MACs = %d, want %d", macs, want)
	}
	// Output stored exactly once.
	var stored int64
	for _, task := range s.Tasks {
		stored += task.StoreBytes()
	}
	if stored != 64*64 {
		t.Errorf("stored %d bytes, want %d", stored, 64*64)
	}
}

func TestOnlyLastKTileStores(t *testing.T) {
	net := fcNet(16, 60000, 16) // forces K tiling
	s, err := Build(net, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tasks) < 2 {
		t.Fatalf("expected K tiling, got %d tasks", len(s.Tasks))
	}
	for i, task := range s.Tasks {
		last := i == len(s.Tasks)-1
		if last && len(task.Stores) == 0 {
			t.Error("last K tile must store")
		}
		if !last && len(task.Stores) != 0 {
			t.Errorf("tile %d stores before reduction finished", i)
		}
	}
}

func TestChainedFCSharesRegions(t *testing.T) {
	net := model.Network{Name: "mlp", Layers: []model.Layer{
		{Name: "fc1", Kind: model.FC, M: 8, K: 16, N: 32},
		{Name: "fc2", Kind: model.FC, M: 8, K: 32, N: 16},
	}}
	s, err := Build(net, testParams())
	if err != nil {
		t.Fatal(err)
	}
	// fc1's store range must equal fc2's input load range.
	out1 := s.Tasks[0].Stores[0]
	found := false
	for _, l := range s.Tasks[1].Loads {
		if l.Addr == out1.Addr {
			found = true
		}
	}
	if !found {
		t.Error("fc2 does not read fc1's output region")
	}
}

func TestTensorsArePageAligned(t *testing.T) {
	s, err := Build(fcNet(16, 16, 16), testParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range s.Tasks {
		for _, sl := range task.Loads {
			if sl.Addr%64 != 0 {
				t.Errorf("load slice %#x not block aligned", sl.Addr)
			}
		}
	}
	if s.FootprintBytes <= 0 {
		t.Error("footprint not recorded")
	}
}

func TestGatherSlicesDeterministicAndInTable(t *testing.T) {
	net := model.Network{Name: "emb", Layers: []model.Layer{
		{Name: "e", Kind: model.Embedding, TableRows: 1024, EmbDim: 16, Lookups: 64},
	}}
	s1, err := Build(net, testParams())
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := Build(net, testParams())
	var total int64
	for ti, task := range s1.Tasks {
		if !task.Gather {
			t.Error("embedding tile not marked Gather")
		}
		for si, sl := range task.Loads {
			if sl != s2.Tasks[ti].Loads[si] {
				t.Error("gather addresses not deterministic")
			}
			if sl.Bytes != 16 {
				t.Errorf("gather row = %d bytes, want 16", sl.Bytes)
			}
			total += sl.Bytes
		}
	}
	if total != 64*16 {
		t.Errorf("gathered %d bytes, want %d", total, 64*16)
	}
}

func TestScheduleAggregates(t *testing.T) {
	net := fcNet(32, 64, 32)
	s, err := Build(net, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if s.TrafficBytes() != s.TotalLoadBytes+s.TotalStoreBytes {
		t.Error("TrafficBytes mismatch")
	}
	if u := s.IdealUtilization(); u <= 0 || u > 1 {
		t.Errorf("ideal utilization = %v", u)
	}
	if len(s.Layers[0]) != len(s.Tasks) {
		t.Errorf("layer index incomplete: %v", s.Layers)
	}
}

func TestBuildRejectsInvalidInputs(t *testing.T) {
	if _, err := Build(model.Network{}, testParams()); err == nil {
		t.Error("invalid network accepted")
	}
	bad := testParams()
	bad.SPMBytes = 0
	if _, err := Build(fcNet(4, 4, 4), bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestBenchmarkWorkloadsAllBuild(t *testing.T) {
	// Built indirectly by sim, but verify the tiler handles every
	// benchmark shape directly.
	nets := []model.Network{
		fcNet(1, 100000, 64), // extreme K
		fcNet(100000, 1, 1),  // extreme M
	}
	for _, n := range nets {
		if _, err := Build(n, testParams()); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

// Property: for random op shapes, loads cover at least the operands of
// every tile, total stores equal the output exactly once, and every
// tile's working set respects the double-buffer budget.
func TestQuickBuildInvariants(t *testing.T) {
	p := testParams()
	f := func(mRaw, kRaw, nRaw uint8) bool {
		m, k, n := int(mRaw)+1, int(kRaw)+1, int(nRaw)+1
		s, err := Build(fcNet(m, k, n), p)
		if err != nil {
			return false
		}
		var macs, stored int64
		for _, task := range s.Tasks {
			macs += task.MACs
			stored += task.StoreBytes()
			set := task.LoadBytes() + task.StoreBytes()
			if set > p.SPMBytes/2+int64(p.BlockBytes) {
				return false
			}
		}
		return macs == int64(m)*int64(k)*int64(n) && stored == int64(m)*int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: slices of different tensors never overlap.
func TestQuickTensorRegionsDisjoint(t *testing.T) {
	p := testParams()
	f := func(kRaw, nRaw uint8) bool {
		k, n := int(kRaw)+1, int(nRaw)+1
		net := model.Network{Name: "two", Layers: []model.Layer{
			{Name: "a", Kind: model.FC, M: 4, K: k, N: n},
			{Name: "b", Kind: model.FC, M: 7, K: 5, N: 3}, // not chainable
		}}
		s, err := Build(net, p)
		if err != nil {
			return false
		}
		// Weight slices of layer a must not overlap weight slices of b.
		type rng struct{ lo, hi uint64 }
		var all []rng
		for _, task := range s.Tasks {
			for _, sl := range task.Stores {
				all = append(all, rng{sl.Addr, sl.Addr + uint64(sl.Bytes)})
			}
		}
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if all[i].lo < all[j].hi && all[j].lo < all[i].hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
