// Package trace provides the instrumentation the original simulator
// emits as log files: per-window memory-request rates (the burstiness
// plot of Fig. 2b), per-window DRAM bandwidth utilization (the timeline
// of Fig. 12), and request logs for TLB/PTW/DRAM events.
//
// The recorders are thin consumers of the internal/obs probe stream:
// both implement obs.Sink, so sim.Config.Obs is the one instrumentation
// path and the recorders are just backends over it. The legacy Record
// entry points remain for direct use.
package trace

import (
	"fmt"
	"io"

	"mnpusim/internal/mem"
	"mnpusim/internal/obs"
)

// RateRecorder counts events per fixed-size cycle window; the paper's
// Fig. 2(b) plots the moving average of memory requests over 1000-cycle
// windows.
type RateRecorder struct {
	window  int64
	counts  []int64
	maxSeen int64
}

// NewRateRecorder creates a recorder with the given window size in
// cycles.
func NewRateRecorder(window int64) (*RateRecorder, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace: rate window must be positive, got %d", window)
	}
	return &RateRecorder{window: window}, nil
}

// Record counts one event (weight 1) at the given cycle.
func (r *RateRecorder) Record(cycle int64) { r.Add(cycle, 1) }

// Emit implements obs.Sink: the recorder counts DMA request issues from
// the probe stream, the Fig. 2b burstiness signal. All other event
// kinds are ignored.
func (r *RateRecorder) Emit(e obs.Event) {
	if e.Kind == obs.KindDMAIssue {
		r.Add(e.Cycle.Int64(), 1)
	}
}

// Add counts weight events at the given cycle.
func (r *RateRecorder) Add(cycle, weight int64) {
	if cycle < 0 {
		return
	}
	w := cycle / r.window
	for int64(len(r.counts)) <= w {
		r.counts = append(r.counts, 0)
	}
	r.counts[w] += weight
	if cycle > r.maxSeen {
		r.maxSeen = cycle
	}
}

// Window returns the window size.
func (r *RateRecorder) Window() int64 { return r.window }

// Counts returns the per-window event counts.
func (r *RateRecorder) Counts() []int64 { return r.counts }

// Rates returns events per cycle for each window.
func (r *RateRecorder) Rates() []float64 {
	out := make([]float64, len(r.counts))
	for i, c := range r.counts {
		out[i] = float64(c) / float64(r.window)
	}
	return out
}

// MovingAverage returns the k-window moving average of the per-window
// rates (k>=1).
func (r *RateRecorder) MovingAverage(k int) []float64 {
	rates := r.Rates()
	if k <= 1 || len(rates) == 0 {
		return rates
	}
	out := make([]float64, len(rates))
	sum := 0.0
	for i, v := range rates {
		sum += v
		if i >= k {
			sum -= rates[i-k]
		}
		n := min(i+1, k)
		out[i] = sum / float64(n)
	}
	return out
}

// BandwidthRecorder accumulates bytes transferred per window, per core,
// for the Fig. 12 utilization timeline. Core index -1 aggregates all.
type BandwidthRecorder struct {
	window int64
	cores  int
	bytes  [][]int64 // [core][window]
}

// NewBandwidthRecorder creates a recorder for the given core count.
func NewBandwidthRecorder(cores int, window int64) (*BandwidthRecorder, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace: bandwidth window must be positive, got %d", window)
	}
	if cores <= 0 {
		return nil, fmt.Errorf("trace: bandwidth recorder needs at least one core, got %d", cores)
	}
	return &BandwidthRecorder{window: window, cores: cores, bytes: make([][]int64, cores)}, nil
}

// Emit implements obs.Sink: the recorder accumulates completed-transfer
// events from the probe stream, the Fig. 12 bandwidth signal. All other
// event kinds are ignored.
func (b *BandwidthRecorder) Emit(e obs.Event) {
	if e.Kind == obs.KindTransfer {
		b.Record(e.Cycle.Int64(), int(e.Core), int(e.A), mem.Class(e.B))
	}
}

// Record attributes a completed transfer; it is shaped to plug directly
// into dram.Memory's OnTransfer hook.
func (b *BandwidthRecorder) Record(now int64, core int, bytes int, _ mem.Class) {
	if core < 0 || core >= b.cores || now < 0 {
		return
	}
	w := now / b.window
	for int64(len(b.bytes[core])) <= w {
		b.bytes[core] = append(b.bytes[core], 0)
	}
	b.bytes[core][w] += int64(bytes)
}

// Utilization returns per-window bandwidth of one core as a fraction of
// peakBytesPerCycle (the paper normalizes to the 256 GB/s peak).
func (b *BandwidthRecorder) Utilization(core int, peakBytesPerCycle float64) []float64 {
	if core < 0 || core >= b.cores {
		return nil
	}
	out := make([]float64, len(b.bytes[core]))
	for i, v := range b.bytes[core] {
		out[i] = float64(v) / (peakBytesPerCycle * float64(b.window))
	}
	return out
}

// Sum returns the per-window total across cores as a fraction of peak
// (the ds2+gpt2 line of Fig. 12).
func (b *BandwidthRecorder) Sum(peakBytesPerCycle float64) []float64 {
	n := 0
	for _, c := range b.bytes {
		n = max(n, len(c))
	}
	out := make([]float64, n)
	for _, c := range b.bytes {
		for i, v := range c {
			out[i] += float64(v) / (peakBytesPerCycle * float64(b.window))
		}
	}
	return out
}

// Windows returns the number of recorded windows across all cores.
func (b *BandwidthRecorder) Windows() int {
	n := 0
	for _, c := range b.bytes {
		n = max(n, len(c))
	}
	return n
}

// RequestLog writes request records in the artifact's log format:
// cycle, address, NPU index, and class.
type RequestLog struct {
	w     io.Writer
	lines int64
}

// NewRequestLog creates a log writing to w.
func NewRequestLog(w io.Writer) *RequestLog { return &RequestLog{w: w} }

// Log writes one record.
func (l *RequestLog) Log(now int64, r *mem.Request) error {
	l.lines++
	_, err := fmt.Fprintf(l.w, "%d %#x %d %s%s\n", now, r.VAddr, r.Core, r.Class, r.Kind)
	return err
}

// Lines returns the number of records written.
func (l *RequestLog) Lines() int64 { return l.lines }
