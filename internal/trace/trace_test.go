package trace

import (
	"strings"
	"testing"

	"mnpusim/internal/mem"
	"mnpusim/internal/obs"
)

func mustRate(t *testing.T, window int64) *RateRecorder {
	t.Helper()
	r, err := NewRateRecorder(window)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRateRecorderWindows(t *testing.T) {
	r := mustRate(t, 100)
	r.Record(0)
	r.Record(99)
	r.Record(100)
	r.Add(250, 5)
	counts := r.Counts()
	if len(counts) != 3 {
		t.Fatalf("windows = %d", len(counts))
	}
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 5 {
		t.Errorf("counts = %v", counts)
	}
	rates := r.Rates()
	if rates[0] != 0.02 || rates[2] != 0.05 {
		t.Errorf("rates = %v", rates)
	}
	if r.Window() != 100 {
		t.Errorf("window = %d", r.Window())
	}
}

func TestRateRecorderIgnoresNegativeCycles(t *testing.T) {
	r := mustRate(t, 10)
	r.Record(-1)
	if len(r.Counts()) != 0 {
		t.Error("negative cycle recorded")
	}
}

func TestRecorderConstructorErrors(t *testing.T) {
	if _, err := NewRateRecorder(0); err == nil {
		t.Error("NewRateRecorder(0) should error")
	}
	if _, err := NewRateRecorder(-5); err == nil {
		t.Error("NewRateRecorder(-5) should error")
	}
	if _, err := NewBandwidthRecorder(2, 0); err == nil {
		t.Error("NewBandwidthRecorder window 0 should error")
	}
	if _, err := NewBandwidthRecorder(0, 100); err == nil {
		t.Error("NewBandwidthRecorder cores 0 should error")
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	r := mustRate(t, 10)
	r.Add(0, 100) // spike in window 0
	r.Add(35, 0)  // extend to 4 windows
	ma := r.MovingAverage(2)
	if len(ma) != 4 {
		t.Fatalf("ma = %v", ma)
	}
	if ma[0] != 10 { // only one window so far
		t.Errorf("ma[0] = %v", ma[0])
	}
	if ma[1] != 5 { // (10+0)/2
		t.Errorf("ma[1] = %v", ma[1])
	}
	if ma[2] != 0 {
		t.Errorf("ma[2] = %v", ma[2])
	}
	// k<=1 returns raw rates.
	raw := r.MovingAverage(1)
	if raw[0] != 10 {
		t.Errorf("raw[0] = %v", raw[0])
	}
}

func TestBandwidthRecorder(t *testing.T) {
	b, err := NewBandwidthRecorder(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	b.Record(0, 0, 64, mem.Data)
	b.Record(50, 0, 64, mem.Data)
	b.Record(150, 1, 128, mem.Data)
	b.Record(10, 5, 64, mem.Data) // out-of-range core ignored
	b.Record(-1, 0, 64, mem.Data) // negative cycle ignored
	u0 := b.Utilization(0, 1.28)  // peak 1.28 B/cyc -> 128 B per window
	if len(u0) != 1 || u0[0] != 1.0 {
		t.Errorf("core0 util = %v", u0)
	}
	u1 := b.Utilization(1, 1.28)
	if len(u1) != 2 || u1[1] != 1.0 || u1[0] != 0 {
		t.Errorf("core1 util = %v", u1)
	}
	sum := b.Sum(1.28)
	if len(sum) != 2 || sum[0] != 1.0 || sum[1] != 1.0 {
		t.Errorf("sum = %v", sum)
	}
	if b.Windows() != 2 {
		t.Errorf("windows = %d", b.Windows())
	}
	if b.Utilization(7, 1) != nil {
		t.Error("bad core should return nil")
	}
}

// TestRecordersConsumeProbeStream drives both recorders through their
// obs.Sink faces and checks they filter to their own signal.
func TestRecordersConsumeProbeStream(t *testing.T) {
	r := mustRate(t, 100)
	b, err := NewBandwidthRecorder(2, 100)
	if err != nil {
		t.Fatal(err)
	}
	var sink obs.Sink = obs.Tee(r, b)
	sink.Emit(obs.Event{Cycle: 10, Kind: obs.KindDMAIssue, Core: 0, A: 1})
	sink.Emit(obs.Event{Cycle: 20, Kind: obs.KindDMAIssue, Core: 0, A: 2})
	sink.Emit(obs.Event{Cycle: 30, Kind: obs.KindTransfer, Core: 1, Unit: 0, A: 128, B: int64(mem.Data)})
	sink.Emit(obs.Event{Cycle: 40, Kind: obs.KindTLBHit, Core: 0}) // ignored by both
	if got := r.Counts(); len(got) != 1 || got[0] != 2 {
		t.Errorf("rate counts = %v, want [2]", got)
	}
	if got := b.Utilization(1, 1.28); len(got) != 1 || got[0] != 1.0 {
		t.Errorf("bandwidth util = %v, want [1]", got)
	}
	if got := b.Utilization(0, 1.28); len(got) != 0 {
		t.Errorf("core0 should have no windows, got %v", got)
	}
}

func TestRequestLogFormat(t *testing.T) {
	var sb strings.Builder
	l := NewRequestLog(&sb)
	r := &mem.Request{Core: 2, VAddr: 0x1000, Kind: mem.Write, Class: mem.PageTable}
	if err := l.Log(42, r); err != nil {
		t.Fatal(err)
	}
	want := "42 0x1000 2 PTW\n"
	if sb.String() != want {
		t.Errorf("log line = %q, want %q", sb.String(), want)
	}
	if l.Lines() != 1 {
		t.Errorf("lines = %d", l.Lines())
	}
}
