package workloads

import (
	"fmt"

	"mnpusim/internal/model"
)

// The eight benchmarks of Table 1. Shapes at ScalePaper follow the
// published architectures (as distributed with SCALE-Sim, which the
// paper's model files are based on); smaller scales divide channel and
// spatial dimensions while keeping each network's arithmetic-intensity
// character.

// AlexNet returns alex: five convolutions and three fully connected
// layers (Krizhevsky et al.).
func AlexNet(s Scale) Workload {
	d, sp := s.Div(), s.SpatialDiv()
	h := sc(224, sp, 16)
	c := func(n int) int { return sc(n, d, 4) }
	layers := []model.Layer{
		{Name: "conv1", Kind: model.Conv, InC: 3, InH: h, InW: h, OutC: c(96), KH: 11, KW: 11, Stride: 4, Pad: 2},
	}
	h2 := (h+2*2-11)/4 + 1
	h2 /= 2 // pool
	layers = append(layers,
		model.Layer{Name: "conv2", Kind: model.Conv, InC: c(96), InH: h2, InW: h2, OutC: c(256), KH: 5, KW: 5, Stride: 1, Pad: 2},
	)
	h3 := h2 / 2
	layers = append(layers,
		model.Layer{Name: "conv3", Kind: model.Conv, InC: c(256), InH: h3, InW: h3, OutC: c(384), KH: 3, KW: 3, Stride: 1, Pad: 1},
		model.Layer{Name: "conv4", Kind: model.Conv, InC: c(384), InH: h3, InW: h3, OutC: c(384), KH: 3, KW: 3, Stride: 1, Pad: 1},
		model.Layer{Name: "conv5", Kind: model.Conv, InC: c(384), InH: h3, InW: h3, OutC: c(256), KH: 3, KW: 3, Stride: 1, Pad: 1},
		model.Layer{Name: "fc6", Kind: model.FC, M: 1, K: c(9216), N: c(4096)},
		model.Layer{Name: "fc7", Kind: model.FC, M: 1, K: c(4096), N: c(4096)},
		model.Layer{Name: "fc8", Kind: model.FC, M: 1, K: c(4096), N: sc(1000, d, 10)},
	)
	return Workload{Short: "alex", Full: "AlexNet", Class: CNN, Net: model.Network{Name: "alex", Layers: layers}}
}

// ResNet50 returns res: the 50-layer residual network (He et al.),
// generated as its four bottleneck stages.
func ResNet50(s Scale) Workload {
	d, sp := s.Div(), s.SpatialDiv()
	c := func(n int) int { return sc(n, d, 4) }
	h := sc(224, sp, 16)

	layers := []model.Layer{
		{Name: "conv1", Kind: model.Conv, InC: 3, InH: h, InW: h, OutC: c(64), KH: 7, KW: 7, Stride: 2, Pad: 3},
	}
	h = h / 4 // stride-2 conv + maxpool

	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	inC := c(64)
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			stride := 1
			if b == 0 {
				stride = st.stride
			}
			mid, out := c(st.mid), c(st.out)
			pfx := fmt.Sprintf("s%db%d", si+2, b)
			layers = append(layers,
				model.Layer{Name: pfx + ".c1", Kind: model.Conv, InC: inC, InH: h, InW: h, OutC: mid, KH: 1, KW: 1, Stride: 1, Pad: 0},
				model.Layer{Name: pfx + ".c2", Kind: model.Conv, InC: mid, InH: h, InW: h, OutC: mid, KH: 3, KW: 3, Stride: stride, Pad: 1},
			)
			if stride > 1 {
				h = (h+2-3)/stride + 1
			}
			layers = append(layers,
				model.Layer{Name: pfx + ".c3", Kind: model.Conv, InC: mid, InH: h, InW: h, OutC: out, KH: 1, KW: 1, Stride: 1, Pad: 0},
			)
			inC = out
		}
	}
	layers = append(layers, model.Layer{Name: "fc", Kind: model.FC, M: 1, K: inC, N: sc(1000, d, 10)})
	return Workload{Short: "res", Full: "Resnet50", Class: CNN, Net: model.Network{Name: "res", Layers: layers}}
}

// YoloTiny returns yt: the nine-convolution Tiny-YOLO detector (Redmon &
// Farhadi).
func YoloTiny(s Scale) Workload {
	d, sp := s.Div(), s.SpatialDiv()
	c := func(n int) int { return sc(n, d, 4) }
	h := sc(416, sp, 26)
	chans := []int{16, 32, 64, 128, 256, 512}
	inC := 3
	var layers []model.Layer
	for i, ch := range chans {
		layers = append(layers, model.Layer{
			Name: fmt.Sprintf("conv%d", i+1), Kind: model.Conv,
			InC: inC, InH: h, InW: h, OutC: c(ch), KH: 3, KW: 3, Stride: 1, Pad: 1,
		})
		inC = c(ch)
		if h > 2 {
			h /= 2 // maxpool
		}
	}
	layers = append(layers,
		model.Layer{Name: "conv7", Kind: model.Conv, InC: inC, InH: h, InW: h, OutC: c(1024), KH: 3, KW: 3, Stride: 1, Pad: 1},
		model.Layer{Name: "conv8", Kind: model.Conv, InC: c(1024), InH: h, InW: h, OutC: c(1024), KH: 3, KW: 3, Stride: 1, Pad: 1},
		model.Layer{Name: "conv9", Kind: model.Conv, InC: c(1024), InH: h, InW: h, OutC: sc(125, d, 5), KH: 1, KW: 1, Stride: 1, Pad: 0},
	)
	return Workload{Short: "yt", Full: "Yolo-tiny", Class: CNN, Net: model.Network{Name: "yt", Layers: layers}}
}

// SelfishRNN returns sfrnn: a two-layer stacked LSTM in the shape used
// by Selfish-RNN (Liu et al.). Each timestep is a batch-1 GEMM, so the
// weight matrices stream from memory with no reuse — the most
// memory-intensive behavior among the benchmarks.
func SelfishRNN(s Scale) Workload {
	d := s.Div()
	hidden := sc(1500, max(1, d*d/4), 32) // batch-1 GEMMs keep it memory-bound at any size
	steps := sc(35, s.SpatialDiv()*2, 4)
	layers := []model.Layer{
		{Name: "lstm1", Kind: model.RNNCell, Hidden: hidden, Input: hidden, Repeat: steps},
		{Name: "lstm2", Kind: model.RNNCell, Hidden: hidden, Input: hidden, Repeat: steps},
	}
	return Workload{Short: "sfrnn", Full: "Selfish-RNN", Class: RNN, Net: model.Network{Name: "sfrnn", Layers: layers}}
}

// DeepSpeech2 returns ds2: two spectrogram convolutions followed by five
// recurrent layers (Amodei et al.).
func DeepSpeech2(s Scale) Workload {
	d, sp := s.Div(), s.SpatialDiv()
	freq := sc(161, sp, 20)
	tsteps := sc(200, sp, 16)
	hidden := sc(1760, max(1, d*d/4), 32)
	layers := []model.Layer{
		{Name: "conv1", Kind: model.Conv, InC: 1, InH: freq, InW: tsteps, OutC: sc(32, d, 4), KH: 11, KW: 5, Stride: 2, Pad: 5},
		{Name: "conv2", Kind: model.Conv, InC: sc(32, d, 4), InH: freq / 2, InW: tsteps / 2, OutC: sc(32, d, 4), KH: 11, KW: 5, Stride: 1, Pad: 5},
	}
	steps := sc(100, sp*sp*3, 6)
	for i := 0; i < 5; i++ {
		in := hidden
		layers = append(layers, model.Layer{
			Name: fmt.Sprintf("rnn%d", i+1), Kind: model.RNNCell,
			Hidden: hidden, Input: in, Repeat: steps,
		})
	}
	layers = append(layers, model.Layer{Name: "fc", Kind: model.FC, M: steps, K: hidden, N: sc(29*64, d, 29)})
	return Workload{Short: "ds2", Full: "DeepSpeech2", Class: RNN, Net: model.Network{Name: "ds2", Layers: layers}}
}

// DLRM returns dlrm: the deep learning recommendation model (Naumov et
// al.) — sparse embedding gathers feeding a bottom and top MLP. The
// gathers dominate: huge footprint, near-zero compute.
func DLRM(s Scale) Workload {
	d := s.Div()
	batch := sc(128, s.SpatialDiv(), 16)
	emb := sc(64, d, 8)
	tables := 8
	rows := 1 << 20 / d
	var layers []model.Layer
	layers = append(layers,
		model.Layer{Name: "botmlp1", Kind: model.FC, M: batch, K: 13, N: sc(512, d, 16)},
		model.Layer{Name: "botmlp2", Kind: model.FC, M: batch, K: sc(512, d, 16), N: sc(256, d, 16)},
		model.Layer{Name: "botmlp3", Kind: model.FC, M: batch, K: sc(256, d, 16), N: emb},
	)
	for t := 0; t < tables; t++ {
		layers = append(layers, model.Layer{
			Name: fmt.Sprintf("emb%d", t), Kind: model.Embedding,
			TableRows: rows, EmbDim: emb, Lookups: batch * 4,
		})
	}
	featIn := (tables + 1) * emb
	layers = append(layers,
		model.Layer{Name: "topmlp1", Kind: model.FC, M: batch, K: featIn, N: sc(512, d, 16)},
		model.Layer{Name: "topmlp2", Kind: model.FC, M: batch, K: sc(512, d, 16), N: sc(256, d, 16)},
		model.Layer{Name: "topmlp3", Kind: model.FC, M: batch, K: sc(256, d, 16), N: 1},
	)
	return Workload{Short: "dlrm", Full: "DLRM", Class: Recommendation, Net: model.Network{Name: "dlrm", Layers: layers}}
}

// NCF returns ncf: neural collaborative filtering (He et al.) — user and
// item embeddings plus a small MLP tower.
func NCF(s Scale) Workload {
	// NCF is small even at paper scale; scale its dims gently (d/2) so
	// the tiny variant stays large relative to fixed memory latencies.
	d := max(1, s.Div()/2)
	batch := 256
	emb := sc(64, d, 16)
	users := 138_000 / d
	items := 27_000 / d
	layers := []model.Layer{
		{Name: "user_emb", Kind: model.Embedding, TableRows: users, EmbDim: emb, Lookups: batch * 2},
		{Name: "item_emb", Kind: model.Embedding, TableRows: items, EmbDim: emb, Lookups: batch * 2},
		{Name: "mlp1", Kind: model.FC, M: batch, K: 2 * emb, N: sc(256, d, 32)},
		{Name: "mlp2", Kind: model.FC, M: batch, K: sc(256, d, 32), N: sc(128, d, 32)},
		{Name: "mlp3", Kind: model.FC, M: batch, K: sc(128, d, 32), N: sc(64, d, 16)},
		{Name: "mlp4", Kind: model.FC, M: batch, K: sc(64, d, 16), N: 1},
	}
	return Workload{Short: "ncf", Full: "NCF", Class: Recommendation, Net: model.Network{Name: "ncf", Layers: layers}}
}

// GPT2 returns gpt2: GPT-2 small in prefill mode — twelve transformer
// blocks of dense GEMMs over the full sequence (Radford et al.).
func GPT2(s Scale) Workload {
	d, sp := s.Div(), s.SpatialDiv()
	dim := sc(768, d, 48)
	heads := sc(12, d, 2)
	for dim%heads != 0 {
		heads--
	}
	layers := []model.Layer{
		{
			Name: "block", Kind: model.Attention,
			SeqLen: sc(512, sp, 32), ModelDim: dim, Heads: heads,
			Repeat: sc(12, sp*sp, 3),
		},
		{Name: "lm_head", Kind: model.FC, M: sc(512, sp, 32), K: dim, N: sc(50257, d*8, 256)},
	}
	return Workload{Short: "gpt2", Full: "gpt2", Class: AttentionClass, Net: model.Network{Name: "gpt2", Layers: layers}}
}
