package workloads

import (
	"fmt"
	"math/rand"

	"mnpusim/internal/model"
)

// RandomSpec bounds the DeepSniffer-style random network generator used
// to train the mapping predictor without overfitting to the eight
// benchmarks (§4.6.1). Dimensions are drawn uniformly from "a realistic
// range", as the paper puts it.
type RandomSpec struct {
	MinLayers, MaxLayers int
	// Conv parameter ranges.
	MinChannels, MaxChannels int
	MinSpatial, MaxSpatial   int
	Kernels                  []int
	Strides                  []int
	// GEMM parameter ranges.
	MinM, MaxM   int
	MinKN, MaxKN int
	// ConvProb is the probability a layer is a convolution (vs GEMM).
	ConvProb float64
}

// DefaultRandomSpec returns ranges matched to the given scale: channels
// and dims comparable to the scaled benchmarks.
func DefaultRandomSpec(s Scale) RandomSpec {
	d := s.Div()
	return RandomSpec{
		MinLayers:   3,
		MaxLayers:   10,
		MinChannels: sc(32, d, 4),
		MaxChannels: sc(512, d, 16),
		MinSpatial:  sc(14, s.SpatialDiv(), 7),
		MaxSpatial:  sc(112, s.SpatialDiv(), 14),
		Kernels:     []int{1, 3, 5},
		Strides:     []int{1, 1, 2},
		MinM:        1,
		MaxM:        sc(256, s.SpatialDiv(), 32),
		MinKN:       sc(64, d, 16),
		MaxKN:       sc(4096, d, 128),
		ConvProb:    0.5,
	}
}

// Random generates a random network from the spec, deterministically for
// a given seed.
func Random(spec RandomSpec, seed int64) model.Network {
	rng := rand.New(rand.NewSource(seed))
	n := spec.MinLayers + rng.Intn(spec.MaxLayers-spec.MinLayers+1)
	layers := make([]model.Layer, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < spec.ConvProb {
			k := spec.Kernels[rng.Intn(len(spec.Kernels))]
			h := randIn(rng, spec.MinSpatial, spec.MaxSpatial)
			layers = append(layers, model.Layer{
				Name:   fmt.Sprintf("rconv%d", i),
				Kind:   model.Conv,
				InC:    randIn(rng, spec.MinChannels, spec.MaxChannels),
				InH:    h,
				InW:    h,
				OutC:   randIn(rng, spec.MinChannels, spec.MaxChannels),
				KH:     k,
				KW:     k,
				Stride: spec.Strides[rng.Intn(len(spec.Strides))],
				Pad:    k / 2,
			})
		} else {
			layers = append(layers, model.Layer{
				Name: fmt.Sprintf("rgemm%d", i),
				Kind: model.GEMM,
				M:    randIn(rng, spec.MinM, spec.MaxM),
				K:    randIn(rng, spec.MinKN, spec.MaxKN),
				N:    randIn(rng, spec.MinKN, spec.MaxKN),
			})
		}
	}
	return model.Network{Name: fmt.Sprintf("rand%d", seed), Layers: layers}
}

// RandomSet generates count random networks with consecutive seeds
// starting at base.
func RandomSet(spec RandomSpec, base int64, count int) []model.Network {
	nets := make([]model.Network, count)
	for i := range nets {
		nets[i] = Random(spec, base+int64(i))
	}
	return nets
}

func randIn(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}
