// Package workloads provides the eight DNN benchmarks of the paper's
// Table 1 (three CNNs, two RNNs, two recommendation models, one
// attention model), the scale levels used to run them, and the
// DeepSniffer-style random network generator used to train the workload
// mapping predictor (§4.6).
package workloads

import (
	"fmt"
	"sort"

	"mnpusim/internal/model"
)

// Scale selects how large the workload shapes (and the matching hardware
// presets) are. The paper's native configurations take up to 24 hours
// per run; ScaleTiny and ScaleSmall shrink every dimension while
// preserving each workload's compute/memory character, so the full mix
// sweeps complete in seconds.
type Scale int

const (
	// ScaleTiny is for unit tests and benchmarks.
	ScaleTiny Scale = iota
	// ScaleSmall is for examples and quick CLI runs.
	ScaleSmall
	// ScalePaper matches the shapes of the published models.
	ScalePaper
)

func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScalePaper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Div returns the dimension divisor applied to channel/hidden sizes.
func (s Scale) Div() int {
	switch s {
	case ScaleTiny:
		return 8
	case ScaleSmall:
		return 4
	default:
		return 1
	}
}

// SpatialDiv returns the divisor applied to image height/width. It is
// deliberately gentler than Div: a conv's arithmetic intensity is
// governed by its smallest GEMM dimension, and shrinking the spatial
// extent (the im2col M dimension) too far would turn the paper's
// compute-intensive CNNs memory-bound. The hardware presets shrink
// per-core bandwidth by the same factor as the PE array so the machine
// balance (MACs per byte) stays at the paper's value.
func (s Scale) SpatialDiv() int {
	switch s {
	case ScaleTiny, ScaleSmall:
		return 2
	default:
		return 1
	}
}

// Class matches Table 1's workload type column.
type Class string

const (
	CNN            Class = "CNN"
	RNN            Class = "RNN"
	Recommendation Class = "Recommendation"
	AttentionClass Class = "Attention"
)

// Workload pairs a benchmark's short name (as used throughout the
// paper's figures) with its network.
type Workload struct {
	// Short is the figure label: res, yt, alex, sfrnn, ds2, dlrm,
	// ncf, gpt2.
	Short string
	// Full is the model name from Table 1.
	Full  string
	Class Class
	Net   model.Network
}

// Names lists the eight short names in the paper's Table 1 order.
func Names() []string {
	return []string{"res", "yt", "alex", "sfrnn", "ds2", "dlrm", "ncf", "gpt2"}
}

// All returns the eight benchmarks at the given scale, in Table 1 order.
func All(s Scale) []Workload {
	return []Workload{
		ResNet50(s), YoloTiny(s), AlexNet(s),
		SelfishRNN(s), DeepSpeech2(s),
		DLRM(s), NCF(s), GPT2(s),
	}
}

// ByName returns the named benchmark at the given scale.
func ByName(short string, s Scale) (Workload, error) {
	for _, w := range All(s) {
		if w.Short == short {
			return w, nil
		}
	}
	valid := Names()
	sort.Strings(valid)
	return Workload{}, fmt.Errorf("workloads: unknown workload %q (have %v)", short, valid)
}

// MustByName is ByName, panicking on error.
func MustByName(short string, s Scale) Workload {
	w, err := ByName(short, s)
	if err != nil {
		panic(err)
	}
	return w
}

// sc divides v by div, clamping to min.
func sc(v, div, min int) int {
	v /= div
	if v < min {
		return min
	}
	return v
}
