package workloads

import (
	"testing"

	"mnpusim/internal/model"
)

func TestAllScalesProduceValidNetworks(t *testing.T) {
	for _, s := range []Scale{ScaleTiny, ScaleSmall, ScalePaper} {
		ws := All(s)
		if len(ws) != 8 {
			t.Fatalf("scale %s: %d workloads, want 8 (Table 1)", s, len(ws))
		}
		for _, w := range ws {
			if err := w.Net.Validate(); err != nil {
				t.Errorf("%s at %s: %v", w.Short, s, err)
			}
		}
	}
}

func TestNamesMatchTable1(t *testing.T) {
	want := []string{"res", "yt", "alex", "sfrnn", "ds2", "dlrm", "ncf", "gpt2"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// All(s) order must match Names().
	for i, w := range All(ScaleTiny) {
		if w.Short != want[i] {
			t.Errorf("All()[%d] = %q, want %q", i, w.Short, want[i])
		}
	}
}

func TestClassesMatchTable1(t *testing.T) {
	classes := map[string]Class{
		"res": CNN, "yt": CNN, "alex": CNN,
		"sfrnn": RNN, "ds2": RNN,
		"dlrm": Recommendation, "ncf": Recommendation,
		"gpt2": AttentionClass,
	}
	for _, w := range All(ScaleTiny) {
		if w.Class != classes[w.Short] {
			t.Errorf("%s class = %s, want %s", w.Short, w.Class, classes[w.Short])
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("gpt2", ScaleTiny)
	if err != nil || w.Short != "gpt2" {
		t.Errorf("ByName(gpt2): %v %v", w.Short, err)
	}
	if _, err := ByName("nope", ScaleTiny); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName did not panic")
		}
	}()
	MustByName("nope", ScaleTiny)
}

func TestScaleStringsAndDivisors(t *testing.T) {
	if ScaleTiny.String() != "tiny" || ScaleSmall.String() != "small" || ScalePaper.String() != "paper" {
		t.Error("scale strings wrong")
	}
	if ScalePaper.Div() != 1 || ScalePaper.SpatialDiv() != 1 {
		t.Error("paper scale must not shrink dimensions")
	}
	if ScaleTiny.Div() <= ScaleSmall.Div() {
		t.Error("tiny should shrink more than small")
	}
}

func TestScalingShrinksWork(t *testing.T) {
	for _, name := range Names() {
		tiny := MustByName(name, ScaleTiny).Net.Analyze()
		paper := MustByName(name, ScalePaper).Net.Analyze()
		if tiny.MACs >= paper.MACs {
			t.Errorf("%s: tiny MACs %d >= paper MACs %d", name, tiny.MACs, paper.MACs)
		}
		if tiny.TotalElems() >= paper.TotalElems() {
			t.Errorf("%s: tiny footprint not smaller", name)
		}
	}
}

func TestIntensityCharacterPreservedAcrossScales(t *testing.T) {
	// The RNN and recommendation models must stay far less
	// arithmetically intense than the CNNs and gpt2 at every scale —
	// the property the sharing study depends on (§4.2.3).
	for _, s := range []Scale{ScaleTiny, ScaleSmall, ScalePaper} {
		intensity := map[string]float64{}
		for _, w := range All(s) {
			intensity[w.Short] = w.Net.Analyze().ArithmeticIntensity()
		}
		for _, compBound := range []string{"yt", "gpt2"} {
			if intensity["sfrnn"]*4 > intensity[compBound] {
				t.Errorf("scale %s: sfrnn (%.1f) not clearly below %s (%.1f)",
					s, intensity["sfrnn"], compBound, intensity[compBound])
			}
		}
	}
}

func TestResNet50HasBottleneckDepth(t *testing.T) {
	net := ResNet50(ScalePaper).Net
	// conv1 + 3*(3+4+6+3) bottleneck convs + fc = 50 layers.
	if got := len(net.Layers); got != 50 {
		t.Errorf("ResNet50 has %d layers, want 50", got)
	}
}

func TestDLRMIsGatherDominated(t *testing.T) {
	// dlrm's memory-boundness comes from scattered table lookups, not
	// from dense-operand volume: at every scale the gather ops must
	// exist and their rows must be a large share of input traffic.
	for _, s := range []Scale{ScaleTiny, ScalePaper} {
		net := DLRM(s).Net
		gathers := 0
		var gatherElems, totalIn int64
		for _, op := range net.Lower() {
			totalIn += op.InputElems()
			if op.Gather {
				gathers++
				gatherElems += op.InputElems()
			}
		}
		if gathers != 8 {
			t.Errorf("scale %s: DLRM gather ops = %d, want 8 tables", s, gathers)
		}
		if gatherElems*4 < totalIn {
			t.Errorf("scale %s: gathers are only %d of %d input elems", s, gatherElems, totalIn)
		}
	}
}

func TestGPT2BlocksAreAttention(t *testing.T) {
	net := GPT2(ScalePaper).Net
	found := false
	for _, l := range net.Layers {
		if l.Kind == model.Attention {
			found = true
			if l.ModelDim != 768 || l.Repeat != 12 {
				t.Errorf("gpt2 paper dims: %+v", l)
			}
		}
	}
	if !found {
		t.Error("gpt2 has no attention layer")
	}
}

func TestRandomNetworksAreValidAndDeterministic(t *testing.T) {
	spec := DefaultRandomSpec(ScaleTiny)
	for seed := int64(0); seed < 30; seed++ {
		n1 := Random(spec, seed)
		if err := n1.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		n2 := Random(spec, seed)
		if len(n1.Layers) != len(n2.Layers) {
			t.Errorf("seed %d not deterministic", seed)
		}
		for i := range n1.Layers {
			if n1.Layers[i] != n2.Layers[i] {
				t.Errorf("seed %d layer %d differs", seed, i)
			}
		}
	}
}

func TestRandomNetworksRespectBounds(t *testing.T) {
	spec := DefaultRandomSpec(ScaleTiny)
	for seed := int64(100); seed < 130; seed++ {
		n := Random(spec, seed)
		if len(n.Layers) < spec.MinLayers || len(n.Layers) > spec.MaxLayers {
			t.Errorf("seed %d: %d layers outside [%d,%d]", seed, len(n.Layers), spec.MinLayers, spec.MaxLayers)
		}
		for _, l := range n.Layers {
			switch l.Kind {
			case model.Conv:
				if l.InC < spec.MinChannels || l.InC > spec.MaxChannels {
					t.Errorf("seed %d: conv InC %d out of range", seed, l.InC)
				}
			case model.GEMM:
				if l.K < spec.MinKN || l.K > spec.MaxKN {
					t.Errorf("seed %d: gemm K %d out of range", seed, l.K)
				}
			default:
				t.Errorf("seed %d: unexpected kind %v", seed, l.Kind)
			}
		}
	}
}

func TestRandomSetDistinctSeeds(t *testing.T) {
	nets := RandomSet(DefaultRandomSpec(ScaleTiny), 1, 5)
	if len(nets) != 5 {
		t.Fatalf("got %d nets", len(nets))
	}
	names := map[string]bool{}
	for _, n := range nets {
		if names[n.Name] {
			t.Errorf("duplicate name %s", n.Name)
		}
		names[n.Name] = true
	}
}
