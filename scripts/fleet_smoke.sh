#!/bin/sh
# fleet_smoke.sh: end-to-end exercise of the sweep fleet.
#
# Boots THREE mnpuserved daemons on one host sharing a persistent
# --cache-dir and configured as a consistent-hash fleet, then:
#
#   1. submits a sampled quad sweep (POST /v1/sweeps) to one member and
#      waits for the aggregated result, requiring forwarded units (the
#      hash ring routed work to peers) and exactly one simulation per
#      expanded unit across the whole fleet (the shared cache plus
#      routing deduplicated everything);
#   2. re-submits the identical sweep and requires every unit to be a
#      cache hit with zero new simulations;
#   3. asks every member for an already-computed job WITH the forwarded
#      header set (suppressing re-routing) and requires each to answer
#      from the shared disk cache;
#   4. checks GET /v1/fleet shows 3 healthy members whose ring shares
#      sum to 1;
#   5. submits a sweep carrying a fixed W3C traceparent, fetches the
#      federated trace (GET /v1/traces/{id}), renders and validates it
#      with mnputrace -mode spans, and requires spans from every live
#      member plus the sweep-coordination span; also checks the
#      request-ID/Server-Timing response headers and that
#      GET /v1/fleet/metrics aggregates all three registries;
#   6. SIGKILLs one member mid-flight on a fresh sweep and requires the
#      sweep to complete anyway (owner-unreachable units fall back to
#      local execution);
#   7. SIGTERMs the survivors and requires clean drains.
#
# Needs: curl. Uses only POSIX sh + grep/sed/awk so it runs in CI images.
set -eu

P1=18941
P2=18942
P3=18943
U1="http://127.0.0.1:$P1"
U2="http://127.0.0.1:$P2"
U3="http://127.0.0.1:$P3"
PEERS="$U1,$U2,$U3"
TMP="${TMPDIR:-/tmp}/mnpusim_fleet_smoke.$$"
mkdir -p "$TMP/cache"

fail() {
	echo "fleet-smoke: FAIL: $*" >&2
	for n in 1 2 3; do
		[ -f "$TMP/d$n.log" ] && sed "s/^/  daemon$n: /" "$TMP/d$n.log" >&2
	done
	exit 1
}

cleanup() {
	for pid in "${PID1:-}" "${PID2:-}" "${PID3:-}"; do
		[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	done
	rm -rf "$TMP"
}
trap cleanup EXIT

# jfield FILE KEY -> value of a string field ("key":"value").
jfield() {
	sed -n 's/.*"'"$2"'":"\([^"]*\)".*/\1/p' "$1" | head -n 1
}

# jnum FILE KEY -> value of a numeric field ("key":123).
jnum() {
	sed -n 's/.*"'"$2"'":\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1
}

# metric URL NAME -> the counter's value from /metrics (0 if absent).
metric() {
	curl -fsS "$1/metrics" | awk -v n="$2" '$1 == n { print $2; found = 1 } END { if (!found) print 0 }'
}

# sweep_wait URL ID -> polls until the sweep is terminal; echoes status.
sweep_wait() {
	i=0
	while :; do
		curl -fsS "$1/v1/sweeps/$2" >"$TMP/sweep_poll.json"
		ST=$(jfield "$TMP/sweep_poll.json" status)
		case "$ST" in
		done | failed | cancelled)
			echo "$ST"
			return 0
			;;
		esac
		i=$((i + 1))
		[ "$i" -gt 1200 ] && fail "sweep $2 stuck in $ST"
		sleep 0.1
	done
}

echo "fleet-smoke: building mnpuserved"
go build -o "$TMP/mnpuserved" ./cmd/mnpuserved

echo "fleet-smoke: starting 3 daemons sharing $TMP/cache"
n=1
for port in $P1 $P2 $P3; do
	"$TMP/mnpuserved" -addr "127.0.0.1:$port" -workers 2 -drain-timeout 60s \
		-cache-dir "$TMP/cache" -peers "$PEERS" -self "http://127.0.0.1:$port" \
		>"$TMP/d$n.log" 2>&1 &
	eval "PID$n=$!"
	n=$((n + 1))
done
for url in $U1 $U2 $U3; do
	i=0
	until curl -fsS "$url/v1/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && fail "daemon $url never became healthy"
		sleep 0.1
	done
done

SWEEP='{"cores":4,"workloads":["ncf","gpt2","alex"],"scale":"tiny","sample":3}'

echo "fleet-smoke: submitting sampled quad sweep to $U1"
curl -fsS -X POST -d "$SWEEP" "$U1/v1/sweeps" >"$TMP/sweep1.json" ||
	fail "sweep submit rejected"
SW1=$(jfield "$TMP/sweep1.json" id)
TOTAL=$(jnum "$TMP/sweep1.json" total)
[ -n "$SW1" ] || fail "no sweep id in $(cat "$TMP/sweep1.json")"
[ "$TOTAL" = 15 ] || fail "sweep expanded to $TOTAL units, want 15 (3 mixes x 4 levels + 3 ideals)"

ST=$(sweep_wait "$U1" "$SW1")
[ "$ST" = done ] || fail "sweep1 ended $ST: $(cat "$TMP/sweep_poll.json")"
grep -q '"result":{' "$TMP/sweep_poll.json" || fail "done sweep has no aggregated result"
FWD=$(jnum "$TMP/sweep_poll.json" forwarded)
[ "${FWD:-0}" -gt 0 ] || fail "no sweep units were forwarded to peers"

SIMS=0
for url in $U1 $U2 $U3; do
	SIMS=$((SIMS + $(metric "$url" serve_simulations)))
done
[ "$SIMS" = "$TOTAL" ] ||
	fail "fleet ran $SIMS simulations for $TOTAL distinct units (routing/cache dedup broken)"

echo "fleet-smoke: re-submitting the identical sweep — must be all cache hits"
curl -fsS -X POST -d "$SWEEP" "$U1/v1/sweeps" >"$TMP/sweep2.json"
SW2=$(jfield "$TMP/sweep2.json" id)
ST=$(sweep_wait "$U1" "$SW2")
[ "$ST" = done ] || fail "sweep2 ended $ST"
HITS=$(jnum "$TMP/sweep_poll.json" cache_hits)
[ "$HITS" = "$TOTAL" ] || fail "repeat sweep cache hits = $HITS, want $TOTAL"
SIMS2=0
for url in $U1 $U2 $U3; do
	SIMS2=$((SIMS2 + $(metric "$url" serve_simulations)))
done
[ "$SIMS2" = "$SIMS" ] || fail "repeat sweep ran new simulations ($SIMS -> $SIMS2)"

echo "fleet-smoke: every member must answer a warm job from the shared cache"
UNIT='{"workloads":["ncf"],"scale":"tiny","ideal":true}'
for url in $U1 $U2 $U3; do
	curl -fsS -X POST -H "X-Mnpu-Forwarded: smoke" -d "$UNIT" \
		"$url/v1/jobs" >"$TMP/unit.json"
	grep -q '"cached":true' "$TMP/unit.json" ||
		fail "$url did not serve the warm unit from cache: $(cat "$TMP/unit.json")"
done

echo "fleet-smoke: checking /v1/fleet introspection"
curl -fsS "$U2/v1/fleet" >"$TMP/fleet.json"
for url in $U1 $U2 $U3; do
	grep -q "\"url\":\"$url\"" "$TMP/fleet.json" || fail "fleet view missing $url"
done
HEALTHY=$(grep -o '"healthy":true' "$TMP/fleet.json" | wc -l)
[ "$HEALTHY" -eq 3 ] || fail "fleet view shows $HEALTHY healthy members, want 3"
SHARESUM=$(grep -o '"owned_share":[0-9.]*' "$TMP/fleet.json" |
	awk -F: '{ s += $2 } END { printf "%.3f", s }')
[ "$SHARESUM" = "1.000" ] || fail "ring shares sum to $SHARESUM, want 1.000"

echo "fleet-smoke: tracing a sweep across the fleet"
TRACE=4bf92f3577b34da6a3ce929d0e0e4736
curl -fsS -X POST -H "traceparent: 00-$TRACE-00f067aa0ba902b7-01" \
	-d '{"cores":4,"workloads":["ncf","gpt2","alex","dlrm"],"scale":"tiny","sample":5,"seed":3}' \
	"$U2/v1/sweeps" >"$TMP/sweep_t.json" || fail "traced sweep submit rejected"
SWT=$(jfield "$TMP/sweep_t.json" id)
ST=$(sweep_wait "$U2" "$SWT")
[ "$ST" = done ] || fail "traced sweep ended $ST: $(cat "$TMP/sweep_poll.json")"

curl -fsS "$U2/v1/traces/$TRACE" >"$TMP/trace.json" ||
	fail "GET /v1/traces/$TRACE failed"
grep -q '"name":"sweep coordinate"' "$TMP/trace.json" ||
	fail "federated trace missing the sweep-coordination span"

go build -o "$TMP/mnputrace" ./cmd/mnputrace
"$TMP/mnputrace" -mode spans -in "$TMP/trace.json" -obs "$TMP/spans.json" \
	>"$TMP/spans.txt" || fail "mnputrace -mode spans rejected the federated trace"
sed 's/^/  /' "$TMP/spans.txt"
for url in $U1 $U2 $U3; do
	grep -q "service $url: " "$TMP/spans.txt" ||
		fail "federated trace has no spans from member $url"
done

echo "fleet-smoke: checking response headers and fleet-wide metrics"
curl -fsSi "$U1/v1/healthz" >"$TMP/headers.txt"
grep -qi '^x-request-id:' "$TMP/headers.txt" || fail "response missing X-Request-Id"
grep -qi '^server-timing: total;dur=' "$TMP/headers.txt" || fail "response missing Server-Timing"

curl -fsS "$U3/v1/fleet/metrics" >"$TMP/fleet_metrics.txt"
grep -q "aggregated 3 member(s)" "$TMP/fleet_metrics.txt" ||
	fail "/v1/fleet/metrics did not aggregate 3 members"
MSIMS=0
for url in $U1 $U2 $U3; do
	MSIMS=$((MSIMS + $(metric "$url" serve_simulations)))
done
FSIMS=$(awk '$1 == "serve_simulations" { print $2 }' "$TMP/fleet_metrics.txt")
[ "${FSIMS:-0}" = "$MSIMS" ] ||
	fail "fleet-wide serve_simulations = $FSIMS, members sum to $MSIMS"

echo "fleet-smoke: killing member 2 mid-sweep — sweep must still complete"
curl -fsS -X POST -d '{"cores":4,"workloads":["ncf","gpt2","dlrm"],"scale":"tiny","sample":3,"seed":7}' \
	"$U1/v1/sweeps" >"$TMP/sweep3.json"
SW3=$(jfield "$TMP/sweep3.json" id)
kill -9 "$PID2"
PID2=""
ST=$(sweep_wait "$U1" "$SW3")
[ "$ST" = done ] || fail "sweep after member death ended $ST: $(cat "$TMP/sweep_poll.json")"
DONE=$(jnum "$TMP/sweep_poll.json" done)
[ "$DONE" = "$(jnum "$TMP/sweep_poll.json" total)" ] ||
	fail "sweep after member death completed $DONE units of $(jnum "$TMP/sweep_poll.json" total)"

echo "fleet-smoke: SIGTERM drain of the survivors"
for pid in "$PID1" "$PID3"; do
	kill -TERM "$pid"
done
for pid in "$PID1" "$PID3"; do
	i=0
	while kill -0 "$pid" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -gt 300 ] && fail "daemon $pid did not exit after SIGTERM"
		sleep 0.1
	done
	wait "$pid" || fail "daemon $pid exited non-zero"
done
grep -q "drained cleanly" "$TMP/d1.log" || fail "daemon 1: no clean-drain message"
grep -q "drained cleanly" "$TMP/d3.log" || fail "daemon 3: no clean-drain message"
PID1=""
PID3=""

echo "fleet-smoke: OK"
