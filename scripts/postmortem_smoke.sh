#!/bin/sh
# postmortem_smoke.sh: end-to-end exercise of the post-mortem
# observability path, with the race detector and runtime invariants on.
#
# Boots mnpuserved (built -race -tags=invariants) with an aggressive
# anomaly watchdog, kills a heavier job mid-run, fetches its
# flight-recorder dump over HTTP, and validates the dump with
# `mnputrace -mode postmortem` (decode, Chrome-trace replay +
# validation, counter snapshot). A second job lingers long enough for
# the watchdog to fire, so the watchdog dump + CPU profile path and its
# structured log line are exercised too.
#
# Needs: curl. Uses only POSIX sh + grep/sed so it runs in CI images.
set -eu

ADDR="127.0.0.1:18932"
BASE="http://$ADDR"
TMP="${TMPDIR:-/tmp}/mnpusim_postmortem_smoke.$$"
mkdir -p "$TMP"

fail() {
	echo "postmortem-smoke: FAIL: $*" >&2
	[ -f "$TMP/served.log" ] && sed 's/^/  daemon: /' "$TMP/served.log" >&2
	exit 1
}

cleanup() {
	[ -n "${SERVED_PID:-}" ] && kill "$SERVED_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

jfield() {
	sed -n 's/.*"'"$2"'":"\([^"]*\)".*/\1/p' "$1" | head -n 1
}

echo "postmortem-smoke: building binaries (-race -tags=invariants)"
go build -race -tags=invariants -o "$TMP/mnpuserved" ./cmd/mnpuserved
go build -o "$TMP/mnputrace" ./cmd/mnputrace

echo "postmortem-smoke: starting daemon on $ADDR (watchdog at 10% of timeout)"
"$TMP/mnpuserved" -addr "$ADDR" -workers 2 -drain-timeout 60s \
	-watchdog 0.1 -watchdog-profile 100ms \
	>"$TMP/served.log" 2>&1 &
SERVED_PID=$!

i=0
until curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "daemon never became healthy"
	kill -0 "$SERVED_PID" 2>/dev/null || fail "daemon exited during startup"
	sleep 0.1
done

echo "postmortem-smoke: killing a job mid-run and fetching its dump"
curl -fsS -X POST -d '{"workloads":["ncf","gpt2"],"scale":"small","sharing":"+dwt"}' \
	"$BASE/v1/jobs" >"$TMP/job1.json" || fail "submit rejected"
JOB1=$(jfield "$TMP/job1.json" id)
[ -n "$JOB1" ] || fail "no job id in $(cat "$TMP/job1.json")"
# Give the worker a moment to start emitting before the kill.
sleep 1
curl -fsS -X DELETE "$BASE/v1/jobs/$JOB1" >/dev/null || fail "cancel rejected"
i=0
while :; do
	curl -fsS "$BASE/v1/jobs/$JOB1" >"$TMP/poll1.json"
	ST=$(jfield "$TMP/poll1.json" status)
	[ "$ST" = cancelled ] && break
	i=$((i + 1))
	[ "$i" -gt 300 ] && fail "job1 never reached cancelled (last: $ST)"
	sleep 0.1
done
curl -fsS -D "$TMP/dump1.hdr" "$BASE/v1/jobs/$JOB1/dump" >"$TMP/job1.dump" ||
	fail "dump fetch failed"
grep -qi '^x-dump-reason: cancelled' "$TMP/dump1.hdr" ||
	fail "dump reason not cancelled: $(grep -i x-dump-reason "$TMP/dump1.hdr")"
[ -s "$TMP/job1.dump" ] || fail "empty dump"

echo "postmortem-smoke: validating the dump with mnputrace -mode postmortem"
"$TMP/mnputrace" -mode postmortem -in "$TMP/job1.dump" \
	-obs "$TMP/job1_window.json" -obs-counters "$TMP/job1_counters.txt" \
	>"$TMP/postmortem.out" || fail "postmortem render failed"
grep -q 'reason: *cancelled' "$TMP/postmortem.out" ||
	fail "summary missing reason: $(cat "$TMP/postmortem.out")"
grep -q 'valid:' "$TMP/postmortem.out" ||
	fail "rendered window not validated: $(cat "$TMP/postmortem.out")"
[ -s "$TMP/job1_counters.txt" ] || fail "empty counter snapshot"
"$TMP/mnputrace" -mode validate -in "$TMP/job1_window.json" >/dev/null ||
	fail "rendered window fails standalone validation"

echo "postmortem-smoke: arming the watchdog on a deadline-bound job"
curl -fsS -X POST \
	-d '{"workloads":["ncf","gpt2"],"scale":"small","sharing":"+dwt","no_translation":true,"timeout_ms":4000}' \
	"$BASE/v1/jobs" >"$TMP/job2.json" || fail "submit rejected"
JOB2=$(jfield "$TMP/job2.json" id)
i=0
while :; do
	curl -fsS "$BASE/v1/jobs/$JOB2" >"$TMP/poll2.json"
	ST=$(jfield "$TMP/poll2.json" status)
	case "$ST" in done | failed | cancelled) break ;; esac
	i=$((i + 1))
	[ "$i" -gt 300 ] && fail "job2 stuck in $ST"
	sleep 0.1
done
grep -q "watchdog fired" "$TMP/served.log" ||
	fail "no watchdog log line (job2 ended $ST)"
curl -fsS -D "$TMP/dump2.hdr" "$BASE/v1/jobs/$JOB2/dump" >"$TMP/job2.dump" ||
	fail "watchdog dump fetch failed"
grep -qi '^x-dump-reason: watchdog' "$TMP/dump2.hdr" ||
	fail "dump reason not watchdog: $(grep -i x-dump-reason "$TMP/dump2.hdr")"
"$TMP/mnputrace" -mode postmortem -in "$TMP/job2.dump" >/dev/null ||
	fail "watchdog dump does not decode"
# The profile capture runs ~100ms past the fire; retry briefly in case
# the job reached a terminal state mid-capture.
i=0
until curl -fsS "$BASE/v1/jobs/$JOB2/profile" >"$TMP/job2.pprof" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 50 ] && fail "watchdog CPU profile never became available"
	sleep 0.1
done
[ -s "$TMP/job2.pprof" ] || fail "empty CPU profile"

echo "postmortem-smoke: SIGTERM drain"
kill -TERM "$SERVED_PID"
i=0
while kill -0 "$SERVED_PID" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 300 ] && fail "daemon did not exit after SIGTERM"
	sleep 0.1
done
wait "$SERVED_PID" || fail "daemon exited non-zero"
SERVED_PID=""

echo "postmortem-smoke: OK"
