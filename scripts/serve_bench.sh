#!/bin/sh
# serve_bench.sh: measure the serving layer under load and record the
# result as BENCH_serve.json.
#
# Boots one mnpuserved daemon with a persistent cache directory, then
# replays a dual-core experiment grid (3 mixes x 4 levels + 2 ideals =
# 14 distinct configurations) 25 times through cmd/mnpuload's worker
# pool. Every round after the first is answered from the
# content-addressed cache (concurrent first-round submissions of the
# same configuration may each simulate, so a handful of extra misses
# are tolerated), and the run fails if the recorded cache-hit rate
# lands under 0.9 — the expected value is ~96%. The report
# (latency percentiles, throughput, hit rate, simulation count) is
# written to the path in $1 (default BENCH_serve.json).
#
# Needs: curl. Uses only POSIX sh + grep so it runs in CI images.
set -eu

OUT="${1:-BENCH_serve.json}"
ADDR="127.0.0.1:18951"
BASE="http://$ADDR"
TMP="${TMPDIR:-/tmp}/mnpusim_serve_bench.$$"
mkdir -p "$TMP/cache"

fail() {
	echo "serve-bench: FAIL: $*" >&2
	[ -f "$TMP/served.log" ] && sed 's/^/  daemon: /' "$TMP/served.log" >&2
	exit 1
}

cleanup() {
	[ -n "${SERVED_PID:-}" ] && kill "$SERVED_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

echo "serve-bench: building binaries"
go build -o "$TMP/mnpuserved" ./cmd/mnpuserved
go build -o "$TMP/mnpuload" ./cmd/mnpuload

echo "serve-bench: starting daemon on $ADDR"
"$TMP/mnpuserved" -addr "$ADDR" -workers 4 -cache-dir "$TMP/cache" \
	>"$TMP/served.log" 2>&1 &
SERVED_PID=$!
i=0
until curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "daemon never became healthy"
	sleep 0.1
done

echo "serve-bench: replaying the grid 25x through mnpuload"
"$TMP/mnpuload" -addr "$BASE" -workloads ncf,gpt2 -cores 2 -rounds 25 \
	-concurrency 8 -out "$OUT" || fail "load run failed"

grep -q '"p50_ms"' "$OUT" || fail "$OUT missing latency percentiles"
grep -q '"p99_ms"' "$OUT" || fail "$OUT missing latency percentiles"
RATE=$(sed -n 's/.*"cache_hit_rate": \([0-9.]*\).*/\1/p' "$OUT")
case "$RATE" in
0.9* | 1 | 1.*) ;;
*) fail "cache-hit rate $RATE under 0.9 (report: $(cat "$OUT"))" ;;
esac

kill -TERM "$SERVED_PID"
i=0
while kill -0 "$SERVED_PID" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 300 ] && fail "daemon did not exit after SIGTERM"
	sleep 0.1
done
wait "$SERVED_PID" || fail "daemon exited non-zero"
SERVED_PID=""

echo "serve-bench: OK ($OUT)"
