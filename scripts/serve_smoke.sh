#!/bin/sh
# serve_smoke.sh: end-to-end exercise of the simulation service.
#
# Boots mnpuserved, runs a tiny dual-core job to completion through the
# typed client (cmd/mnpuload -one), checks the served result bytes
# equal `mnpusim -json` for the same config, finds the job through
# GET /v1/jobs?status=done, streams its SSE feed and requires the
# terminal "result" event's payload to byte-match the result endpoint
# (plus an "attribution" event carrying the stall-cycle breakdown),
# checks an identical resubmission is answered from the
# content-addressed cache (no second simulation), spot-checks the /v1
# error envelope, cancels an in-flight heavier job, and finally
# SIGTERMs the daemon and requires a clean drain (exit 0).
#
# Needs: curl. Uses only POSIX sh + grep/sed so it runs in CI images.
set -eu

ADDR="127.0.0.1:18931"
BASE="http://$ADDR"
TMP="${TMPDIR:-/tmp}/mnpusim_serve_smoke.$$"
mkdir -p "$TMP"

fail() {
	echo "serve-smoke: FAIL: $*" >&2
	[ -f "$TMP/served.log" ] && sed 's/^/  daemon: /' "$TMP/served.log" >&2
	exit 1
}

cleanup() {
	[ -n "${SERVED_PID:-}" ] && kill "$SERVED_PID" 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT

# jfield FILE KEY -> value of a top-level string field ("key":"value").
jfield() {
	sed -n 's/.*"'"$2"'":"\([^"]*\)".*/\1/p' "$1" | head -n 1
}

echo "serve-smoke: building binaries"
go build -o "$TMP/mnpuserved" ./cmd/mnpuserved
go build -o "$TMP/mnpusim" ./cmd/mnpusim
go build -o "$TMP/mnpuload" ./cmd/mnpuload

echo "serve-smoke: starting daemon on $ADDR"
"$TMP/mnpuserved" -addr "$ADDR" -workers 1 -drain-timeout 60s \
	>"$TMP/served.log" 2>&1 &
SERVED_PID=$!

i=0
until curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "daemon never became healthy"
	kill -0 "$SERVED_PID" 2>/dev/null || fail "daemon exited during startup"
	sleep 0.1
done

SPEC='{"workloads":["ncf","gpt2"],"scale":"tiny","sharing":"static"}'

echo "serve-smoke: running tiny dual-core job via the typed client"
"$TMP/mnpuload" -addr "$BASE" -one -workloads ncf,gpt2 -scale tiny \
	-sharing static >"$TMP/served_result.json" ||
	fail "mnpuload -one failed"

echo "serve-smoke: comparing served result against mnpusim -json"
"$TMP/mnpusim" -json -workloads ncf,gpt2 -scale tiny -sharing static \
	>"$TMP/cli_result.json"
cmp "$TMP/served_result.json" "$TMP/cli_result.json" ||
	fail "served result differs from mnpusim -json"

echo "serve-smoke: finding the job through GET /v1/jobs"
curl -fsS "$BASE/v1/jobs?status=done" >"$TMP/list.json"
JOB1=$(jfield "$TMP/list.json" id)
[ -n "$JOB1" ] || fail "done job not listed: $(cat "$TMP/list.json")"

echo "serve-smoke: streaming SSE events for the finished job"
curl -fsS -N "$BASE/v1/jobs/$JOB1/events" >"$TMP/events.txt" ||
	fail "events stream failed"
grep -q '^event: progress$' "$TMP/events.txt" ||
	fail "no progress event in stream: $(cat "$TMP/events.txt")"
grep -q '^event: attribution$' "$TMP/events.txt" ||
	fail "no attribution event in stream: $(cat "$TMP/events.txt")"
grep -q '"total_cycles"' "$TMP/events.txt" ||
	fail "attribution payload missing bucket data"
# The terminal result event's data bytes must equal the result endpoint.
awk '/^event: result$/ { want = 1; next }
	want && sub(/^data: /, "") { printf "%s", $0; exit }' \
	"$TMP/events.txt" >"$TMP/sse_result.json"
cmp "$TMP/sse_result.json" "$TMP/served_result.json" ||
	fail "SSE terminal event differs from result endpoint bytes"

echo "serve-smoke: resubmitting — must be a cache hit"
curl -fsS -X POST -d "$SPEC" "$BASE/v1/jobs" >"$TMP/job2.json"
grep -q '"cached":true' "$TMP/job2.json" ||
	fail "resubmission not served from cache: $(cat "$TMP/job2.json")"
curl -fsS "$BASE/metrics" >"$TMP/metrics.txt"
grep -q '^serve_simulations 1$' "$TMP/metrics.txt" ||
	fail "expected exactly 1 simulation, got: $(grep '^serve_' "$TMP/metrics.txt" | tr '\n' ' ')"

echo "serve-smoke: spot-checking the /v1 error envelope"
curl -s "$BASE/v1/jobs/j999999" >"$TMP/err.json"
grep -q '"error":{"code":"not_found"' "$TMP/err.json" ||
	fail "404 body is not the error envelope: $(cat "$TMP/err.json")"
curl -s -X POST -d '{"workloads":["bogus"]}' "$BASE/v1/jobs" >"$TMP/err2.json"
grep -q '"code":"invalid_request"' "$TMP/err2.json" ||
	fail "400 body is not the error envelope: $(cat "$TMP/err2.json")"

echo "serve-smoke: cancelling an in-flight heavier job"
curl -fsS -X POST -d '{"workloads":["ncf","gpt2"],"scale":"small","sharing":"+dwt"}' \
	"$BASE/v1/jobs" >"$TMP/job3.json"
JOB3=$(jfield "$TMP/job3.json" id)
curl -fsS -X DELETE "$BASE/v1/jobs/$JOB3" >/dev/null
i=0
while :; do
	curl -fsS "$BASE/v1/jobs/$JOB3" >"$TMP/poll3.json"
	ST=$(jfield "$TMP/poll3.json" status)
	[ "$ST" = cancelled ] && break
	[ "$ST" = done ] || [ "$ST" = failed ] &&
		fail "job3 ended $ST instead of cancelled"
	i=$((i + 1))
	[ "$i" -gt 300 ] && fail "job3 never reached cancelled (last: $ST)"
	sleep 0.1
done

echo "serve-smoke: SIGTERM drain"
kill -TERM "$SERVED_PID"
i=0
while kill -0 "$SERVED_PID" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 300 ] && fail "daemon did not exit after SIGTERM"
	sleep 0.1
done
wait "$SERVED_PID" || fail "daemon exited non-zero"
grep -q "drained cleanly" "$TMP/served.log" || fail "no clean-drain message"
SERVED_PID=""

echo "serve-smoke: OK"
